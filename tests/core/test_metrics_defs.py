"""Table I metric algebra."""

import numpy as np
import pytest

from repro.core.metrics_defs import compute_metrics, hm_ipc, summarize_sample
from repro.sim.pmu import Event, N_EVENTS, PmuSample

CPS = 2.1e9


def sample_with(cpu_rows: dict[int, dict[Event, float]], n_cpus: int = 2, wall: float = 1000.0) -> PmuSample:
    d = np.zeros((n_cpus, N_EVENTS))
    for cpu, events in cpu_rows.items():
        for ev, val in events.items():
            d[cpu, ev] = val
    return PmuSample(d, wall)


class TestTableI:
    def make(self):
        return sample_with(
            {
                0: {
                    Event.CYCLES: CPS,  # exactly one second of core time
                    Event.INSTRUCTIONS: 1e9,
                    Event.L2_PREF_REQ: 1000.0,
                    Event.L2_PREF_MISS: 800.0,
                    Event.L2_DM_REQ: 2000.0,
                    Event.L2_DM_MISS: 400.0,
                    Event.L3_LOAD_MISS: 300.0,
                    Event.MEM_DEMAND_BYTES: 300.0 * 64,
                    Event.MEM_PREF_BYTES: 700.0 * 64,
                }
            }
        )

    def test_m1_l2_llc_traffic(self):
        m = compute_metrics(self.make(), 0, CPS)
        assert m.l2_llc_traffic == 800 + 400

    def test_m2_pref_miss_frac(self):
        m = compute_metrics(self.make(), 0, CPS)
        assert m.l2_pref_miss_frac == pytest.approx(800 / 1200)

    def test_m3_ptr_per_second_of_core_time(self):
        m = compute_metrics(self.make(), 0, CPS)
        assert m.l2_ptr == pytest.approx(800.0)  # 800 misses in 1 s

    def test_m4_pga(self):
        m = compute_metrics(self.make(), 0, CPS)
        assert m.pga == pytest.approx(1000 / 2000)

    def test_m5_pmr(self):
        m = compute_metrics(self.make(), 0, CPS)
        assert m.l2_pmr == pytest.approx(800 / 1000)

    def test_m6_ppm(self):
        m = compute_metrics(self.make(), 0, CPS)
        assert m.l2_ppm == pytest.approx(1000 / 400)

    def test_m7_llc_pt_is_mem_traffic_minus_demand(self):
        m = compute_metrics(self.make(), 0, CPS)
        # total mem bytes 64000; demand (L3 load miss * 64) = 19200
        assert m.llc_pt == pytest.approx((1000 * 64 - 300 * 64))

    def test_idle_core_all_zero(self):
        m = compute_metrics(self.make(), 1, CPS)
        assert m.pga == 0.0
        assert m.l2_ptr == 0.0
        assert m.llc_pt == 0.0

    def test_zero_denominators_safe(self):
        s = sample_with({0: {Event.L2_PREF_MISS: 10.0}})
        m = compute_metrics(s, 0, CPS)
        assert m.l2_pmr == 0.0    # no requests recorded
        assert m.l2_ppm == 0.0


class TestSummaries:
    def test_active_flag(self):
        s = sample_with({0: {Event.INSTRUCTIONS: 10.0, Event.CYCLES: 5.0}})
        summ = summarize_sample(s, CPS)
        assert summ[0].active
        assert not summ[1].active

    def test_ipc(self):
        s = sample_with({0: {Event.INSTRUCTIONS: 10.0, Event.CYCLES: 5.0}})
        assert summarize_sample(s, CPS)[0].ipc == pytest.approx(2.0)

    def test_mem_bytes_per_sec_uses_core_time(self):
        s = sample_with(
            {0: {Event.INSTRUCTIONS: 1.0, Event.CYCLES: CPS / 2, Event.MEM_DEMAND_BYTES: 100.0}}
        )
        assert summarize_sample(s, CPS)[0].mem_bytes_per_sec == pytest.approx(200.0)


class TestHmIpc:
    def _summ(self, ipcs):
        rows = {
            i: {Event.INSTRUCTIONS: ipc * 100, Event.CYCLES: 100.0} for i, ipc in enumerate(ipcs)
        }
        return summarize_sample(sample_with(rows, n_cpus=len(ipcs)), CPS)

    def test_harmonic_mean(self):
        assert hm_ipc(self._summ([1.0, 2.0])) == pytest.approx(2 / (1 + 0.5))

    def test_ignores_idle_cores(self):
        s = self._summ([1.0, 0.0])  # second core idle (0 instructions)
        assert hm_ipc(s) == pytest.approx(1.0)

    def test_all_idle_zero(self):
        assert hm_ipc(self._summ([0.0, 0.0])) == 0.0

    def test_dominated_by_minimum(self):
        assert hm_ipc(self._summ([0.01, 2.0, 2.0, 2.0])) < 0.05
