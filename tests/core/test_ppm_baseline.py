"""PPM-group baseline (SPAC-style) and the paper's critique of it."""


from repro.core.epoch import EpochConfig, EpochContext
from repro.core.frontend import AggDetector
from repro.core.metrics_defs import CoreSummary, TableIMetrics
from repro.core.policies import make_policy
from repro.core.ppm_baseline import PPMGroupThrottlingPolicy, ppm_groups
from repro.sim.pmu import Event
from tests.core.fakes import FakePlatform, aggressive_row, make_counts, quiet_row


def summ(ppms):
    out = []
    for i, ppm in enumerate(ppms):
        out.append(
            CoreSummary(cpu=i, active=ppm is not None, ipc=1.0, instructions=100.0,
                        cycles=100.0, stalls_l2_pending=0.0, mem_bytes_per_sec=0.0,
                        metrics=TableIMetrics(0, 0, 0, 0, 0, ppm or 0.0, 0))
        )
    return out


class TestPpmGroups:
    def test_above_mean_is_aggressive(self):
        agg, meek = ppm_groups(summ([10.0, 1.0, 1.0, 1.0]))
        assert agg == [0]
        assert meek == [1, 2, 3]

    def test_low_ppm_everywhere_no_aggressive(self):
        agg, meek = ppm_groups(summ([0.01, 0.02, 0.01]))
        assert agg == []

    def test_idle_cores_excluded(self):
        agg, meek = ppm_groups(summ([10.0, None, 1.0]))
        assert agg == [0]
        assert meek == [2]

    def test_empty(self):
        assert ppm_groups([]) == ([], [])


class TestPolicy:
    def test_registered(self):
        assert make_policy("ppm-group").name == "ppm-group"

    def test_misses_rand_access_like_cores(self):
        """The paper's critique: a Rand Access-like core has PPM ~ 1
        (one adjacent prefetch per demand miss), lands below the mean
        when streamers are present, and is never throttled."""

        def behavior(plat):
            rows = []
            for cpu in range(plat.n_cores):
                if cpu == 0:  # streamer: very high PPM
                    r = aggressive_row(ipc=2.0)
                    r[Event.L2_DM_MISS] = 2_000.0
                    rows.append(r)
                elif cpu == 1:  # rand-access-like: PPM == 1
                    r = aggressive_row(ipc=0.1)
                    r[Event.L2_PREF_REQ] = r[Event.L2_DM_MISS] = 30_000.0
                    r[Event.L2_PREF_MISS] = 30_000.0
                    rows.append(r)
                else:
                    rows.append(quiet_row())
            return make_counts(rows)

        plat = FakePlatform(behavior=behavior)
        ctx = EpochContext(plat, AggDetector(), EpochConfig())
        policy = PPMGroupThrottlingPolicy()
        rc = policy.plan(ctx)
        aggressive, _ = policy.last_groups
        assert 0 in aggressive       # the streamer is flagged
        assert 1 not in aggressive   # the rand-access core is missed

    def test_no_aggressive_returns_baseline(self):
        plat = FakePlatform(behavior=lambda p: make_counts([quiet_row()] * p.n_cores))
        ctx = EpochContext(plat, AggDetector(), EpochConfig())
        rc = PPMGroupThrottlingPolicy().plan(ctx)
        assert rc.throttled_cores() == ()
        assert len(ctx.intervals) == 1

    def test_margin_guard(self):
        """Marginal gains do not trigger throttling."""

        def behavior(plat):
            throttled = plat.masks[0] != 0x0
            rows = [aggressive_row(ipc=0.5)]
            rows += [quiet_row(ipc=1.005 if throttled else 1.0) for _ in range(plat.n_cores - 1)]
            return make_counts(rows)

        plat = FakePlatform(behavior=behavior)
        ctx = EpochContext(plat, AggDetector(), EpochConfig())
        rc = PPMGroupThrottlingPolicy().plan(ctx)
        assert rc.throttled_cores() == ()
