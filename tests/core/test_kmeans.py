"""1-D k-means."""

import numpy as np
import pytest

from repro.core.kmeans import cluster_groups, kmeans1d


class TestKmeans1d:
    def test_obvious_two_clusters(self):
        x = [1.0, 1.1, 0.9, 10.0, 10.2, 9.8]
        labels, centers = kmeans1d(x, 2)
        assert len(centers) == 2
        assert centers[0] == pytest.approx(1.0, abs=0.2)
        assert centers[1] == pytest.approx(10.0, abs=0.3)
        assert list(labels[:3]) == [0, 0, 0]
        assert list(labels[3:]) == [1, 1, 1]

    def test_centers_sorted_ascending(self):
        _, centers = kmeans1d([5.0, 1.0, 9.0, 2.0, 8.0, 1.5], 3)
        assert (np.diff(centers) >= 0).all()

    def test_k_reduced_to_distinct_values(self):
        labels, centers = kmeans1d([3.0, 3.0, 3.0], 2)
        assert len(centers) == 1
        assert (labels == 0).all()

    def test_k_equals_n(self):
        labels, centers = kmeans1d([1.0, 2.0, 3.0], 3)
        assert len(centers) == 3
        assert sorted(labels) == [0, 1, 2]

    def test_single_value(self):
        labels, centers = kmeans1d([7.0], 3)
        assert list(centers) == [7.0]
        assert list(labels) == [0]

    def test_deterministic(self):
        x = list(np.random.default_rng(0).random(40))
        a = kmeans1d(x, 3)
        b = kmeans1d(x, 3)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            kmeans1d([], 2)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            kmeans1d([1.0], 0)

    def test_labels_match_nearest_center(self):
        x = np.array([0.0, 0.5, 5.0, 5.5, 100.0])
        labels, centers = kmeans1d(x, 3)
        for xi, li in zip(x, labels):
            nearest = np.argmin(np.abs(centers - xi))
            assert li == nearest


class TestClusterGroups:
    def test_partition_of_indices(self):
        groups = cluster_groups([1.0, 9.0, 1.2, 8.8], 2)
        flat = sorted(i for g in groups for i in g)
        assert flat == [0, 1, 2, 3]

    def test_ordered_by_center(self):
        groups = cluster_groups([10.0, 1.0, 11.0, 0.5], 2)
        assert sorted(groups[0]) == [1, 3]   # low-value cluster first
        assert sorted(groups[1]) == [0, 2]

    def test_no_empty_groups(self):
        groups = cluster_groups([1.0, 1.0, 1.0, 50.0], 3)
        assert all(groups)
