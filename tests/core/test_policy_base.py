"""Policy base: friendliness split and the baseline policy."""


from repro.core.epoch import EpochConfig, EpochContext
from repro.core.frontend import AggDetector
from repro.core.metrics_defs import CoreSummary, TableIMetrics
from repro.core.policy_base import BaselinePolicy, friendliness_split
from tests.core.fakes import FakePlatform


def summ(ipcs):
    metrics = TableIMetrics(0, 0, 0, 0, 0, 0, 0)
    return [
        CoreSummary(cpu=i, active=ipc > 0, ipc=ipc, instructions=ipc * 100, cycles=100.0,
                    stalls_l2_pending=0.0, mem_bytes_per_sec=0.0, metrics=metrics)
        for i, ipc in enumerate(ipcs)
    ]


class TestFriendlinessSplit:
    def test_split_by_threshold(self):
        on = summ([2.0, 1.0, 0.5])
        off = summ([1.0, 0.9, 0.5])
        friendly, unfriendly = friendliness_split(on, off, (0, 1, 2))
        assert friendly == (0,)          # 2x speedup from prefetching
        assert unfriendly == (1, 2)      # ~11% and 0% below the 50% bar

    def test_custom_threshold(self):
        on = summ([1.2, 1.0])
        off = summ([1.0, 1.0])
        friendly, unfriendly = friendliness_split(on, off, (0, 1), speedup_threshold=0.1)
        assert friendly == (0,)
        assert unfriendly == (1,)

    def test_zero_off_ipc_counts_friendly(self):
        # IPC collapsing to zero with prefetchers off means the core is
        # entirely carried by prefetching: infinite speedup, friendly.
        on = summ([1.0])
        off = summ([0.0])
        friendly, unfriendly = friendliness_split(on, off, (0,))
        assert friendly == (0,)
        assert unfriendly == ()

    def test_idle_both_ways_counts_unfriendly(self):
        # Zero IPC in both intervals: nothing to protect, no speedup.
        on = summ([0.0])
        off = summ([0.0])
        friendly, unfriendly = friendliness_split(on, off, (0,))
        assert friendly == ()
        assert unfriendly == (0,)

    def test_only_agg_cores_considered(self):
        on = summ([2.0, 2.0])
        off = summ([0.5, 0.5])
        friendly, unfriendly = friendliness_split(on, off, (1,))
        assert friendly == (1,)
        assert unfriendly == ()

    def test_empty_agg(self):
        assert friendliness_split(summ([1.0]), summ([1.0]), ()) == ((), ())


class TestBaselinePolicy:
    def test_no_sampling_no_control(self):
        plat = FakePlatform()
        ctx = EpochContext(plat, AggDetector(), EpochConfig())
        rc = BaselinePolicy().plan(ctx)
        assert ctx.intervals == []
        assert rc.throttled_cores() == ()
        assert rc.core_clos == (0,) * plat.n_cores
