"""Dunn baseline: stall clustering and nested way assignment."""

import pytest

from repro.core.dunn import DunnPolicy, dunn_way_assignment
from repro.core.epoch import EpochConfig, EpochContext
from repro.core.frontend import AggDetector
from repro.sim.pmu import Event
from tests.core.fakes import FakePlatform, make_counts, quiet_row


class TestWayAssignment:
    def test_most_stalled_gets_full_cache(self):
        ways = dunn_way_assignment([10.0, 100.0, 1000.0], 20)
        assert ways[-1] == 20

    def test_monotone_nested(self):
        ways = dunn_way_assignment([5.0, 50.0, 200.0, 800.0], 20)
        assert ways == sorted(ways)

    def test_proportional_to_cumulative_share(self):
        ways = dunn_way_assignment([500.0, 500.0], 20)
        assert ways == [10, 20]

    def test_min_ways_floor(self):
        ways = dunn_way_assignment([1.0, 10_000.0], 20, min_ways=2)
        assert ways[0] >= 2

    def test_zero_stalls_full_cache_for_all(self):
        assert dunn_way_assignment([0.0, 0.0], 20) == [20, 20]

    def test_empty(self):
        assert dunn_way_assignment([], 20) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            dunn_way_assignment([-1.0], 20)


class StallBehavior:
    """Cores with very different stall counts, no prefetch activity."""

    def __call__(self, plat):
        stalls = [1e3, 1e3, 5e5, 5e5, 5e6, 5e6, 1e7, 1e7][: plat.n_cores]
        rows = []
        for c in range(plat.n_cores):
            row = quiet_row()
            row[Event.STALLS_L2_PENDING] = stalls[c]
            rows.append(row)
        return make_counts(rows)


class TestDunnPolicy:
    def run(self, n_cores=8, llc_ways=20):
        plat = FakePlatform(n_cores=n_cores, llc_ways=llc_ways, behavior=StallBehavior())
        ctx = EpochContext(plat, AggDetector(), EpochConfig())
        rc = DunnPolicy().plan(ctx)
        return rc, ctx

    def test_uses_one_interval(self):
        _, ctx = self.run()
        assert len(ctx.intervals) == 1

    def test_higher_stalls_more_ways(self):
        rc, _ = self.run()
        ways_low = bin(rc.cbm_of_core(0)).count("1")
        ways_high = bin(rc.cbm_of_core(7)).count("1")
        assert ways_high == 20
        assert ways_low < ways_high

    def test_partitions_nested(self):
        rc, _ = self.run()
        masks = sorted({rc.cbm_of_core(c) for c in range(8)})
        for small, large in zip(masks, masks[1:]):
            assert small & large == small  # nested: lower mask inside higher

    def test_similar_cores_share_cluster(self):
        rc, _ = self.run()
        assert rc.core_clos[0] == rc.core_clos[1]
        assert rc.core_clos[6] == rc.core_clos[7]
        assert rc.core_clos[0] != rc.core_clos[6]

    def test_prefetchers_untouched(self):
        rc, _ = self.run()
        assert rc.throttled_cores() == ()
