"""CMMController epoch loop and stats accumulation."""

import pytest

from repro.core.controller import CMMController
from repro.core.epoch import EpochConfig
from repro.core.policies import make_policy
from repro.core.policy_base import BaselinePolicy, Policy
from repro.sim.pmu import Event
from tests.core.fakes import FakePlatform, make_counts, quiet_row


def make_controller(policy=None, platform=None, **cfg_kwargs):
    plat = platform or FakePlatform()
    cfg_kwargs.setdefault("warmup_units", 50)
    cfg = EpochConfig(exec_units=1000, sample_units=100, **cfg_kwargs)
    return CMMController(plat, policy or BaselinePolicy(), epoch_cfg=cfg), plat


class TestControllerLoop:
    def test_baseline_one_epoch_interval_count(self):
        ctl, plat = make_controller()
        ctl.run(1)
        # warm-up + execution epoch (baseline plans without sampling)
        assert plat.intervals_run == 2

    def test_epochs_accumulate(self):
        ctl, plat = make_controller()
        stats = ctl.run(3)
        assert len(stats.epochs) == 3
        assert plat.intervals_run == 1 + 3  # warmup + 3 exec

    def test_warmup_skipped_when_zero(self):
        ctl, plat = make_controller(warmup_units=0)
        ctl.run(1)
        assert plat.intervals_run == 1

    def test_stats_accumulate_all_intervals(self):
        ctl, _ = make_controller()
        stats = ctl.run(2)
        # Each fake interval reports 1e6 cycles/core; warmup + 2 epochs.
        assert stats.totals[0, Event.CYCLES] == pytest.approx(3e6)
        assert stats.wall_cycles == pytest.approx(3e6)

    def test_rejects_zero_epochs(self):
        ctl, _ = make_controller()
        with pytest.raises(ValueError):
            ctl.run(0)

    def test_policy_sampling_counted_in_stats(self):
        class TwoSamplePolicy(Policy):
            name = "two-sample"

            def plan(self, ctx):
                base = ctx.baseline_config()
                ctx.sample(base)
                ctx.sample(base.with_prefetch_off([0]))
                return base

        ctl, plat = make_controller(policy=TwoSamplePolicy())
        stats = ctl.run(1)
        assert plat.intervals_run == 4  # warmup + 2 samples + exec
        assert stats.epochs[0].sampling_intervals == 2

    def test_chosen_config_applied_for_execution(self):
        class ThrottleCore0(Policy):
            name = "t0"

            def plan(self, ctx):
                return ctx.baseline_config().with_prefetch_off([0])

        ctl, plat = make_controller(policy=ThrottleCore0())
        ctl.run(1)
        assert plat.applied_log[-1]["masks"][0] == 0xF


class TestRunStats:
    def test_ipc_helpers(self):
        ctl, _ = make_controller()
        stats = ctl.run(1)
        assert stats.ipc(0) == pytest.approx(1.0)  # quiet_row ipc=1.0
        assert len(stats.ipc_all()) == 4

    def test_wall_seconds(self):
        ctl, _ = make_controller()
        stats = ctl.run(1)
        assert stats.wall_seconds == pytest.approx(stats.wall_cycles / 2.1e9)

    def test_bandwidth_zero_without_traffic(self):
        ctl, _ = make_controller()
        stats = ctl.run(1)
        assert stats.mem_bandwidth_mbs() == 0.0


class TestPolicyRegistry:
    @pytest.mark.parametrize(
        "name", ["baseline", "pt", "dunn", "pref-cp", "pref-cp2", "cmm-a", "cmm-b", "cmm-c"]
    )
    def test_all_policies_run_one_epoch(self, name):
        plat = FakePlatform(behavior=lambda p: make_counts([quiet_row()] * p.n_cores))
        cfg = EpochConfig(exec_units=500, sample_units=50, warmup_units=0)
        ctl = CMMController(plat, make_policy(name), epoch_cfg=cfg)
        stats = ctl.run(1)
        assert len(stats.epochs) == 1

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            make_policy("nope")
