"""A scriptable fake platform for policy unit tests.

The fake records every control action and produces PMU samples from an
injected ``behavior(platform) -> (n_cores, N_EVENTS) array`` callback,
so tests can dictate exactly what each candidate configuration appears
to do — no simulator in the loop.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.platform.base import Platform
from repro.sim.pmu import Event, N_EVENTS, PmuSample

CPS = 2.1e9


def make_counts(per_core: list[dict[Event, float]]) -> np.ndarray:
    d = np.zeros((len(per_core), N_EVENTS))
    for cpu, events in enumerate(per_core):
        for ev, val in events.items():
            d[cpu, ev] = val
    return d


def aggressive_row(ipc: float = 1.5) -> dict[Event, float]:
    """PMU events that pass every stage of the Fig. 5 detector.

    Rates matter: the detector applies absolute PTR and LLC-PT floors,
    so the counts are sized for ~8e7 prefetch misses/second of core
    time at 2.1 GHz.
    """
    cycles = 1e6
    return {
        Event.INSTRUCTIONS: ipc * cycles,
        Event.CYCLES: cycles,
        Event.L2_DM_REQ: 20_000.0,
        Event.L2_DM_MISS: 6_000.0,
        Event.L2_PREF_REQ: 40_000.0,
        Event.L2_PREF_MISS: 38_000.0,
        Event.L3_LOAD_MISS: 4_000.0,
        Event.MEM_DEMAND_BYTES: 4_000.0 * 64,
        Event.MEM_PREF_BYTES: 38_000.0 * 64,
    }


def quiet_row(ipc: float = 1.0) -> dict[Event, float]:
    cycles = 1e6
    return {
        Event.INSTRUCTIONS: ipc * cycles,
        Event.CYCLES: cycles,
        Event.L2_DM_REQ: 100.0,
        Event.L2_DM_MISS: 10.0,
    }


class FakePlatform(Platform):
    def __init__(
        self,
        n_cores: int = 4,
        llc_ways: int = 8,
        behavior: Callable[["FakePlatform"], np.ndarray] | None = None,
    ) -> None:
        self._n_cores = n_cores
        self._llc_ways = llc_ways
        self.behavior = behavior or (lambda p: make_counts([quiet_row()] * p.n_cores))
        self.masks = [0] * n_cores
        self.cbm = {0: (1 << llc_ways) - 1}
        self.core_clos = [0] * n_cores
        self.intervals_run = 0
        self.applied_log: list[dict] = []

    @property
    def n_cores(self) -> int:
        return self._n_cores

    @property
    def llc_ways(self) -> int:
        return self._llc_ways

    @property
    def cycles_per_second(self) -> float:
        return CPS

    def set_prefetch_mask(self, core: int, mask: int) -> None:
        self.masks[core] = mask

    def prefetch_mask(self, core: int) -> int:
        return self.masks[core]

    def set_clos_cbm(self, clos: int, cbm: int) -> None:
        self.cbm[clos] = cbm

    def assign_core_clos(self, core: int, clos: int) -> None:
        self.core_clos[core] = clos

    def reset_partitions(self) -> None:
        self.cbm = {0: (1 << self._llc_ways) - 1}
        self.core_clos = [0] * self._n_cores

    def run_interval(self, units: int) -> PmuSample:
        self.intervals_run += 1
        self.applied_log.append(
            {"masks": tuple(self.masks), "core_clos": tuple(self.core_clos), "cbm": dict(self.cbm)}
        )
        return PmuSample(self.behavior(self), wall_cycles=1e6)
