"""Pref-CP / Pref-CP2 policies and partition sizing."""

import pytest

from repro.core.epoch import EpochConfig, EpochContext
from repro.core.frontend import AggDetector
from repro.core.partitioning import (
    CLOS_AGG,
    CLOS_UNFRIENDLY,
    PrefCP2Policy,
    PrefCPPolicy,
    contiguous_mask,
    partition_ways,
)
from repro.sim.msr import PF_ALL_OFF, PF_ALL_ON
from tests.core.fakes import FakePlatform, aggressive_row, make_counts, quiet_row


class TestSizingRule:
    def test_paper_factor(self):
        # ceil(1.5 * n) ways
        assert partition_ways(1, 20) == 2
        assert partition_ways(2, 20) == 3
        assert partition_ways(4, 20) == 6

    def test_clamped_to_leave_room(self):
        assert partition_ways(20, 20) == 19

    def test_min_ways(self):
        assert partition_ways(1, 20, min_ways=4) == 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            partition_ways(0, 20)


class TestContiguousMask:
    def test_basic(self):
        assert contiguous_mask(3, 0, 20) == 0b111
        assert contiguous_mask(2, 3, 20) == 0b11000

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            contiguous_mask(4, 18, 20)


def run_policy(policy, behavior, n_cores=4, llc_ways=8):
    plat = FakePlatform(n_cores=n_cores, llc_ways=llc_ways, behavior=behavior)
    ctx = EpochContext(plat, AggDetector(), EpochConfig())
    rc = policy.plan(ctx)
    return rc, ctx, plat


def one_aggressor(plat):
    rows = [aggressive_row() if c == 0 else quiet_row() for c in range(plat.n_cores)]
    return make_counts(rows)


class TestPrefCP:
    def test_agg_core_partitioned(self):
        policy = PrefCPPolicy()
        rc, ctx, _ = run_policy(policy, one_aggressor)
        assert policy.last_agg_set == (0,)
        assert rc.core_clos[0] == CLOS_AGG
        assert rc.cbm_of_core(0) == 0b11  # 1.5*1 -> 2 ways
        assert all(rc.core_clos[c] == 0 for c in range(1, 4))
        # neutral cores share the whole cache (overlapping partitioning)
        assert rc.cbm_of_core(1) == 0xFF

    def test_prefetchers_left_on(self):
        rc, _, _ = run_policy(PrefCPPolicy(), one_aggressor)
        assert rc.prefetch_masks == (PF_ALL_ON,) * 4

    def test_single_sampling_interval(self):
        _, ctx, _ = run_policy(PrefCPPolicy(), one_aggressor)
        assert len(ctx.intervals) == 1

    def test_empty_agg_no_partition(self):
        rc, _, _ = run_policy(PrefCPPolicy(), lambda p: make_counts([quiet_row()] * 4))
        assert rc.core_clos == (0,) * 4


class TwoClassBehavior:
    """Cores 0,1 aggressive.  Core 0 friendly (prefetch off halves its
    IPC); core 1 unfriendly (IPC unchanged without prefetching)."""

    def __call__(self, plat):
        rows = []
        for c in range(plat.n_cores):
            if c == 0:
                rows.append(aggressive_row(ipc=0.8 if plat.masks[0] == PF_ALL_OFF else 2.0))
            elif c == 1:
                rows.append(aggressive_row(ipc=0.5))
            else:
                rows.append(quiet_row())
        return make_counts(rows)


class TestPrefCP2:
    def test_friendly_and_unfriendly_in_separate_partitions(self):
        policy = PrefCP2Policy()
        rc, ctx, _ = run_policy(policy, TwoClassBehavior())
        friendly, unfriendly = policy.last_split
        assert friendly == (0,)
        assert unfriendly == (1,)
        assert rc.core_clos[0] == CLOS_AGG
        assert rc.core_clos[1] == CLOS_UNFRIENDLY
        # disjoint contiguous partitions
        assert rc.cbm_of_core(0) & rc.cbm_of_core(1) == 0

    def test_two_sampling_intervals(self):
        _, ctx, _ = run_policy(PrefCP2Policy(), TwoClassBehavior())
        assert len(ctx.intervals) == 2

    def test_prefetchers_restored_on(self):
        rc, _, _ = run_policy(PrefCP2Policy(), TwoClassBehavior())
        assert rc.prefetch_masks == (PF_ALL_ON,) * 4

    def test_all_friendly_one_partition(self):
        def behavior(plat):
            rows = []
            for c in range(plat.n_cores):
                if c == 0:
                    rows.append(aggressive_row(ipc=0.5 if plat.masks[0] == PF_ALL_OFF else 2.0))
                else:
                    rows.append(quiet_row())
            return make_counts(rows)

        policy = PrefCP2Policy()
        rc, _, _ = run_policy(policy, behavior)
        assert policy.last_split == ((0,), ())
        assert rc.core_clos[0] == CLOS_AGG
        assert CLOS_UNFRIENDLY not in rc.core_clos
