"""PT policy: grouping, combination search, margin/selection behaviour."""


from repro.core.epoch import EpochConfig, EpochContext
from repro.core.frontend import AggDetector
from repro.core.metrics_defs import CoreSummary, TableIMetrics
from repro.core.throttling import PrefetchThrottlingPolicy, off_combinations, throttle_groups
from repro.sim.msr import PF_ALL_OFF, PF_ALL_ON
from tests.core.fakes import FakePlatform, aggressive_row, make_counts, quiet_row


def summaries_with_ptr(ptrs):
    out = []
    for i, ptr in enumerate(ptrs):
        out.append(
            CoreSummary(
                cpu=i, active=True, ipc=1.0, instructions=1.0, cycles=1.0,
                stalls_l2_pending=0.0, mem_bytes_per_sec=0.0,
                metrics=TableIMetrics(0, 0, ptr, 0, 0, 0, 0),
            )
        )
    return out


class TestThrottleGroups:
    def test_small_set_singletons(self):
        groups = throttle_groups([1, 3], summaries_with_ptr([0, 10, 0, 20]), max_exhaustive=3)
        assert groups == [[1], [3]]

    def test_large_set_clustered_by_ptr(self):
        ptrs = [0, 100.0, 105.0, 9.0, 10.0, 500.0]
        agg = [1, 2, 3, 4, 5]
        groups = throttle_groups(agg, summaries_with_ptr(ptrs), max_exhaustive=3, n_groups=3)
        assert len(groups) == 3
        as_sets = [set(g) for g in groups]
        assert {3, 4} in as_sets     # low-PTR cores grouped
        assert {1, 2} in as_sets     # mid
        assert {5} in as_sets        # high

    def test_group_count_bounded(self):
        agg = list(range(8))
        groups = throttle_groups(agg, summaries_with_ptr(range(8)), max_exhaustive=3, n_groups=3)
        assert len(groups) <= 3
        assert sorted(c for g in groups for c in g) == agg


class TestOffCombinations:
    def test_singleton_groups_power_set(self):
        combos = list(off_combinations([[0], [1]]))
        assert combos == [(), (0,), (1,), (0, 1)]

    def test_groups_toggle_together(self):
        combos = set(off_combinations([[0, 2], [1]]))
        assert (0, 2) in combos
        assert (0,) not in combos  # core 0 never throttled without 2

    def test_empty_groups(self):
        assert list(off_combinations([])) == [()]


class FriendlyVictimBehavior:
    """Core 0 is a detected aggressor whose prefetching is useful:
    throttling it hurts it a lot and helps nobody much."""

    def __call__(self, plat):
        rows = []
        for cpu in range(plat.n_cores):
            if cpu == 0:
                row = aggressive_row(ipc=0.4 if plat.masks[0] == PF_ALL_OFF else 2.0)
            else:
                row = quiet_row(ipc=1.0)
            rows.append(row)
        return make_counts(rows)


class UselessAggressorBehavior:
    """Core 0's prefetching is useless: throttling it helps everyone."""

    def __call__(self, plat):
        throttled = plat.masks[0] == PF_ALL_OFF
        rows = []
        for cpu in range(plat.n_cores):
            if cpu == 0:
                row = aggressive_row(ipc=0.55 if throttled else 0.5)
            else:
                row = quiet_row(ipc=1.5 if throttled else 0.8)
            rows.append(row)
        return rows and make_counts(rows)


def run_policy(behavior, **kwargs):
    plat = FakePlatform(behavior=behavior)
    ctx = EpochContext(plat, AggDetector(), EpochConfig())
    policy = PrefetchThrottlingPolicy(**kwargs)
    rc = policy.plan(ctx)
    return policy, rc, ctx, plat


class TestPTPolicy:
    def test_first_interval_always_all_on(self):
        _, _, _, plat = run_policy(UselessAggressorBehavior())
        assert plat.applied_log[0]["masks"] == (PF_ALL_ON,) * 4

    def test_no_agg_returns_baseline_after_one_interval(self):
        policy, rc, ctx, _ = run_policy(lambda p: make_counts([quiet_row()] * 4))
        assert policy.last_agg_set == ()
        assert rc.throttled_cores() == ()
        assert len(ctx.intervals) == 1

    def test_useless_aggressor_gets_throttled(self):
        policy, rc, _, _ = run_policy(UselessAggressorBehavior())
        assert policy.last_agg_set == (0,)
        assert rc.throttled_cores() == (0,)

    def test_friendly_aggressor_stays_on_with_margin(self):
        policy, rc, _, _ = run_policy(FriendlyVictimBehavior())
        assert policy.last_agg_set == (0,)
        assert rc.throttled_cores() == ()

    def test_interval_two_probes_agg_off(self):
        _, _, _, plat = run_policy(UselessAggressorBehavior())
        assert plat.applied_log[1]["masks"][0] == PF_ALL_OFF

    def test_pt_never_partitions(self):
        _, rc, _, _ = run_policy(UselessAggressorBehavior())
        assert rc.core_clos == (0,) * 4
        assert dict(rc.clos_cbm)[0] == 0xFF


class TestFineGrainedPT:
    def test_fine_grained_probes_partial_masks(self):
        from repro.sim.msr import MASK_L2_OFF

        class L2OffIsBest:
            """Everyone does best when core 0 disables only its L2
            prefetchers (keeps the useful DCU stride prefetcher)."""

            def __call__(self, plat):
                rows = []
                m0 = plat.masks[0]
                for cpu in range(plat.n_cores):
                    if cpu == 0:
                        ipc = {0x0: 0.4, PF_ALL_OFF: 0.45, MASK_L2_OFF: 0.5}.get(m0, 0.42)
                        rows.append(aggressive_row(ipc=ipc))
                    else:
                        throttled = m0 != 0x0
                        rows.append(quiet_row(ipc=1.5 if throttled else 0.8))
                return make_counts(rows)

        policy, rc, _, plat = run_policy(L2OffIsBest(), fine_grained=True)
        assert rc.prefetch_masks[0] == MASK_L2_OFF

    def test_fine_grained_off_by_default(self):
        policy, rc, _, _ = run_policy(UselessAggressorBehavior())
        assert rc.prefetch_masks[0] in (0x0, PF_ALL_OFF)
