"""The composable decision pipeline: stages, scorer, actuation."""

from types import SimpleNamespace

import pytest

from repro.core.allocation import ResourceConfig
from repro.core.epoch import EpochConfig, EpochContext
from repro.core.frontend import AggDetector
from repro.core.pipeline import (
    LAYOUT_AGG,
    ActuateStage,
    DecisionPipeline,
    SenseStage,
    Stage,
    SweepScorer,
    contiguous_mask,
    partition_layout,
    partition_ways,
)
from repro.platform.base import PlatformError
from tests.core.fakes import FakePlatform, make_counts, quiet_row

N_CORES = 4
LLC_WAYS = 8


def make_ctx(**cfg_kwargs):
    plat = FakePlatform(
        n_cores=N_CORES,
        llc_ways=LLC_WAYS,
        behavior=lambda p: make_counts([quiet_row()] * N_CORES),
    )
    return EpochContext(plat, AggDetector(), EpochConfig(**cfg_kwargs))


class Decide(Stage):
    """Decides immediately with a marker config."""

    name = "decide:test"

    def run(self, state):
        state.decision = state.base.with_prefetch_off((0,))
        return {"reason": "test-decided"}


class Inapplicable(Stage):
    name = "decide:never"

    def applies(self, state):
        return False

    def run(self, state):  # pragma: no cover - must not run
        raise AssertionError("inapplicable stage ran")


class TestDecisionPipeline:
    def test_default_decision_is_baseline(self):
        ctx = make_ctx()
        state = DecisionPipeline([SenseStage()]).run(ctx)
        assert state.decision == ctx.baseline_config()

    def test_inapplicable_stage_recorded_as_skipped(self):
        ctx = make_ctx()
        DecisionPipeline([SenseStage(), Inapplicable()]).run(ctx)
        trace = ctx.stage_traces[-1]
        assert trace.stage == "decide:never"
        assert trace.skipped
        assert trace.detail["reason"] == "not-applicable"

    def test_stages_after_decision_are_skipped(self):
        ctx = make_ctx()
        state = DecisionPipeline([Decide(), SenseStage()]).run(ctx)
        assert state.decision.throttled_cores() == (0,)
        trace = ctx.stage_traces[-1]
        assert trace.stage == "sense" and trace.skipped
        assert trace.detail["reason"] == "decision-already-made"
        assert ctx.intervals == []  # the skipped sense never sampled

    def test_plan_returns_the_decision(self):
        assert DecisionPipeline([Decide()]).plan(make_ctx()).throttled_cores() == (0,)

    def test_every_stage_leaves_a_trace(self):
        ctx = make_ctx()
        DecisionPipeline([SenseStage(), Inapplicable(), Decide()]).run(ctx)
        assert [t.stage for t in ctx.stage_traces] == ["sense", "decide:never", "decide:test"]


class TestSweepScorer:
    def r(self, hm):
        return SimpleNamespace(hm_ipc=hm)

    def test_better_is_strictly_greater(self):
        scorer = SweepScorer()
        assert scorer.better(self.r(1.0), None)
        assert scorer.better(self.r(1.1), self.r(1.0))
        assert not scorer.better(self.r(1.0), self.r(1.0))  # first wins ties

    def test_accepts_applies_margin(self):
        scorer = SweepScorer(selection_margin=0.10)
        assert scorer.accepts(1.11, 1.0)
        assert not scorer.accepts(1.10, 1.0)  # boundary is exclusive
        assert not scorer.accepts(1.05, 1.0)

    def test_rereference_takes_max_of_prior_and_fresh_sample(self):
        ctx = make_ctx()
        base = ctx.baseline_config()
        fresh = ctx.sample(base).hm_ipc
        assert SweepScorer().rereference(ctx, base, prior_hm=0.0) == fresh
        assert SweepScorer().rereference(ctx, base, prior_hm=99.0) == 99.0

    def test_rereference_skips_sampling_when_budget_exhausted(self):
        ctx = make_ctx(max_sampling_intervals=2)
        base = ctx.baseline_config()
        ctx.sample(base)
        ctx.sample(base)
        n = len(ctx.intervals)
        assert SweepScorer().rereference(ctx, base, prior_hm=0.5) == 0.5
        assert len(ctx.intervals) == n


class TestPartitionHelpers:
    def test_unknown_layout_rejected(self):
        base = ResourceConfig.all_on(N_CORES, LLC_WAYS)
        with pytest.raises(ValueError):
            partition_layout("diagonal", base, (0,), (0,), (), LLC_WAYS)

    def test_agg_layout_with_empty_set_is_base(self):
        base = ResourceConfig.all_on(N_CORES, LLC_WAYS)
        assert partition_layout(LAYOUT_AGG, base, (), (), (), LLC_WAYS) == base

    def test_partition_ways_clamps(self):
        assert partition_ways(1, 8) == 2           # ceil(1.5 * 1)
        assert partition_ways(100, 8) == 7         # never the whole cache

    def test_contiguous_mask_bounds(self):
        assert contiguous_mask(3, 2, 8) == 0b11100
        with pytest.raises(ValueError):
            contiguous_mask(5, 4, 8)


class TestActuateStage:
    def test_success_records_config_summary(self):
        applied = []
        stage = ActuateStage(applied.append)
        cfg = ResourceConfig.all_on(N_CORES, LLC_WAYS)
        trace = stage.apply(cfg)
        assert applied == [cfg]
        assert trace.stage == "actuate"
        assert trace.detail["applied"] is True
        assert trace.detail["config"]["core_clos"] == [0] * N_CORES

    def test_recoverable_failure_captured_not_raised(self):
        def applier(config):
            raise PlatformError("msr write refused")

        trace = ActuateStage(applier).apply(ResourceConfig.all_on(N_CORES, LLC_WAYS))
        assert trace.detail["applied"] is False
        assert trace.detail["error"] == "msr write refused"

    def test_unrecoverable_failure_propagates(self):
        def applier(config):
            raise RuntimeError("bug")

        with pytest.raises(RuntimeError):
            ActuateStage(applier).apply(ResourceConfig.all_on(N_CORES, LLC_WAYS))
