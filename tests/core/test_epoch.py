"""Epoch scheduling and the sampling context."""

import pytest

from repro.core.epoch import EpochConfig, EpochContext
from repro.core.frontend import AggDetector
from tests.core.fakes import FakePlatform, aggressive_row, make_counts, quiet_row


class TestEpochConfig:
    def test_defaults_keep_paper_ratio(self):
        cfg = EpochConfig()
        assert cfg.exec_units // cfg.sample_units == 50  # the paper's 50:1

    def test_validation(self):
        with pytest.raises(ValueError):
            EpochConfig(exec_units=0)
        with pytest.raises(ValueError):
            EpochConfig(sample_units=0)
        with pytest.raises(ValueError):
            EpochConfig(max_sampling_intervals=1)
        with pytest.raises(ValueError):
            EpochConfig(warmup_units=-1)


class TestEpochContext:
    def make_ctx(self, platform=None, **cfg):
        plat = platform or FakePlatform()
        return EpochContext(plat, AggDetector(), EpochConfig(**cfg)), plat

    def test_sample_applies_config_and_records(self):
        ctx, plat = self.make_ctx()
        rc = ctx.baseline_config().with_prefetch_off([1])
        result = ctx.sample(rc)
        assert plat.masks[1] == 0xF
        assert ctx.intervals == [result]
        assert result.hm_ipc > 0

    def test_budget_enforced(self):
        ctx, _ = self.make_ctx(max_sampling_intervals=2)
        ctx.sample(ctx.baseline_config())
        ctx.sample(ctx.baseline_config())
        assert ctx.budget_left() == 0
        with pytest.raises(RuntimeError, match="budget"):
            ctx.sample(ctx.baseline_config())

    def test_detect_integrates_frontend(self):
        plat = FakePlatform(
            behavior=lambda p: make_counts([aggressive_row(), quiet_row(), quiet_row(), quiet_row()])
        )
        ctx, _ = self.make_ctx(platform=plat)
        r = ctx.sample(ctx.baseline_config())
        report = ctx.detect(r.summaries)
        assert report.agg_set == (0,)

    def test_properties(self):
        ctx, plat = self.make_ctx()
        assert ctx.n_cores == plat.n_cores
        assert ctx.llc_ways == plat.llc_ways
