"""CMM-a/b/c coordinated policies (Fig. 6 options)."""

import pytest

from repro.core.allocation import ResourceConfig
from repro.core.coordinated import CMMPolicy
from repro.core.epoch import EpochConfig, EpochContext
from repro.core.frontend import AggDetector
from repro.core.partitioning import CLOS_AGG, CLOS_UNFRIENDLY
from repro.sim.msr import PF_ALL_OFF, PF_ALL_ON
from tests.core.fakes import FakePlatform, aggressive_row, make_counts, quiet_row

N_CORES = 6
LLC_WAYS = 20


class MixedBehavior:
    """Core 0: friendly aggressor (prefetch off kills it).
    Core 1: useless aggressor (everyone gains when it's throttled).
    Cores 2+: quiet victims."""

    def __call__(self, plat):
        t1 = plat.masks[1] == PF_ALL_OFF
        rows = []
        for c in range(plat.n_cores):
            if c == 0:
                rows.append(aggressive_row(ipc=0.6 if plat.masks[0] == PF_ALL_OFF else 2.0))
            elif c == 1:
                rows.append(aggressive_row(ipc=0.45 if t1 else 0.4))
            else:
                rows.append(quiet_row(ipc=1.4 if t1 else 0.7))
        return make_counts(rows)


def run_cmm(variant, behavior=None, **kwargs):
    plat = FakePlatform(n_cores=N_CORES, llc_ways=LLC_WAYS, behavior=behavior or MixedBehavior())
    ctx = EpochContext(plat, AggDetector(), EpochConfig())
    policy = CMMPolicy(variant, **kwargs)
    rc = policy.plan(ctx)
    return policy, rc, ctx


class TestVariantValidation:
    def test_rejects_unknown_variant(self):
        with pytest.raises(ValueError):
            CMMPolicy("x")

    def test_name(self):
        assert CMMPolicy("b").name == "cmm-b"


class TestSplit:
    def test_friendliness_split(self):
        policy, _, _ = run_cmm("a")
        assert policy.last_agg_set == (0, 1)
        assert policy.last_split == ((0,), (1,))


class TestCMMa:
    def test_whole_agg_set_partitioned(self):
        _, rc, _ = run_cmm("a")
        assert rc.core_clos[0] == CLOS_AGG
        assert rc.core_clos[1] == CLOS_AGG
        assert rc.cbm_of_core(0) == 0b111  # ceil(1.5*2) = 3 ways
        assert rc.core_clos[2] == 0

    def test_unfriendly_core_throttled(self):
        _, rc, _ = run_cmm("a")
        assert rc.throttled_cores() == (1,)

    def test_friendly_core_keeps_prefetchers(self):
        _, rc, _ = run_cmm("a")
        assert rc.prefetch_masks[0] == PF_ALL_ON


class TestCMMb:
    def test_only_friendly_partitioned(self):
        _, rc, _ = run_cmm("b")
        assert rc.core_clos[0] == CLOS_AGG
        assert rc.core_clos[1] == 0     # unfriendly shares the whole cache
        assert rc.cbm_of_core(0) == 0b11

    def test_unfriendly_still_throttled(self):
        _, rc, _ = run_cmm("b")
        assert rc.throttled_cores() == (1,)


class TestCMMc:
    def test_two_separate_partitions(self):
        _, rc, _ = run_cmm("c")
        assert rc.core_clos[0] == CLOS_AGG
        assert rc.core_clos[1] == CLOS_UNFRIENDLY
        assert rc.cbm_of_core(0) & rc.cbm_of_core(1) == 0

    def test_unfriendly_throttled(self):
        _, rc, _ = run_cmm("c")
        assert rc.throttled_cores() == (1,)


class TestCMMcOverlapClamp:
    """Regression: when the two split partitions don't fit disjointly,
    the unfriendly mask must clamp to the top of the cache and overlap
    the friendly partition (overlapping partitioning, as in the paper)
    rather than raise or silently shrink."""

    def _masks(self, policy, base, friendly, unfriendly, llc_ways):
        rc = policy._partitioned(base, friendly, unfriendly, llc_ways)
        table = dict(rc.clos_cbm)
        return rc, table[CLOS_AGG], table[CLOS_UNFRIENDLY]

    def test_overlap_clamped_to_top(self):
        policy = CMMPolicy("c")
        base = ResourceConfig.all_on(N_CORES, 8)
        # 3 friendly + 3 unfriendly cores => ceil(1.5*3) = 5 ways each;
        # 5 + 5 > 8, so the unfriendly partition clamps to bits 3..7.
        rc, agg_mask, unf_mask = self._masks(policy, base, (0, 1, 2), (3, 4, 5), 8)
        assert agg_mask == 0b00011111
        assert unf_mask == 0b11111000
        assert agg_mask & unf_mask == 0b00011000  # intentional overlap
        assert rc.core_clos[0] == CLOS_AGG
        assert rc.core_clos[3] == CLOS_UNFRIENDLY

    def test_disjoint_when_cache_is_big_enough(self):
        policy = CMMPolicy("c")
        base = ResourceConfig.all_on(N_CORES, LLC_WAYS)
        _, agg_mask, unf_mask = self._masks(policy, base, (0,), (1,), LLC_WAYS)
        assert agg_mask == 0b11
        assert unf_mask == 0b1100
        assert agg_mask & unf_mask == 0

    def test_repeat_call_is_stable(self):
        policy = CMMPolicy("c")
        base = ResourceConfig.all_on(N_CORES, 8)
        first = policy._partitioned(base, (0, 1, 2), (3, 4, 5), 8)
        second = policy._partitioned(base, (0, 1, 2), (3, 4, 5), 8)
        assert first == second


class TestFallbacks:
    def test_empty_agg_set_uses_dunn(self):
        policy, rc, ctx = run_cmm("a", behavior=lambda p: make_counts([quiet_row()] * N_CORES))
        assert policy.last_agg_set == ()
        assert len(ctx.intervals) == 1
        # Dunn uses its own CLOS ids and never throttles.
        assert rc.throttled_cores() == ()

    def test_all_friendly_cp_only(self):
        def behavior(plat):
            rows = []
            for c in range(plat.n_cores):
                if c == 0:
                    rows.append(aggressive_row(ipc=0.5 if plat.masks[0] == PF_ALL_OFF else 2.0))
                else:
                    rows.append(quiet_row())
            return make_counts(rows)

        policy, rc, ctx = run_cmm("a", behavior=behavior)
        assert policy.last_split == ((0,), ())
        assert rc.throttled_cores() == ()
        assert rc.core_clos[0] == CLOS_AGG
        assert len(ctx.intervals) == 2  # detection + friendliness only

    def test_margin_keeps_prefetchers_when_gain_marginal(self):
        class Marginal(MixedBehavior):
            def __call__(self, plat):
                t1 = plat.masks[1] == PF_ALL_OFF
                rows = []
                for c in range(plat.n_cores):
                    if c == 0:
                        rows.append(aggressive_row(ipc=0.6 if plat.masks[0] == PF_ALL_OFF else 2.0))
                    elif c == 1:
                        rows.append(aggressive_row(ipc=0.4))
                    else:
                        rows.append(quiet_row(ipc=0.707 if t1 else 0.7))  # ~1% gain
                return make_counts(rows)

        _, rc, _ = run_cmm("a", behavior=Marginal(), selection_margin=0.03)
        assert rc.throttled_cores() == ()
