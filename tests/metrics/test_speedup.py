"""HS / WS / ANTT / worst-case definitions."""

import numpy as np
import pytest

from repro.metrics.speedup import (
    antt,
    harmonic_mean,
    harmonic_speedup,
    normalized_ipcs,
    weighted_speedup,
    worst_case_speedup,
)


class TestHarmonicMean:
    def test_basic(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean([1.0, 3.0]) == pytest.approx(1.5)

    def test_zero_collapses(self):
        assert harmonic_mean([0.0, 5.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_le_arithmetic_mean(self):
        v = [0.3, 1.2, 2.5, 0.9]
        assert harmonic_mean(v) <= np.mean(v)


class TestNormalizedIpcs:
    def test_ratios(self):
        np.testing.assert_allclose(normalized_ipcs([2.0, 1.0], [1.0, 2.0]), [2.0, 0.5])

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            normalized_ipcs([1.0], [0.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            normalized_ipcs([1.0, 2.0], [1.0])


class TestHS:
    def test_equal_to_alone_is_one(self):
        assert harmonic_speedup([1.0, 2.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_halved_everywhere(self):
        assert harmonic_speedup([0.5, 1.0], [1.0, 2.0]) == pytest.approx(0.5)

    def test_dominated_by_worst_program(self):
        hs = harmonic_speedup([0.1, 2.0], [1.0, 2.0])
        assert hs < 0.2

    def test_antt_is_reciprocal(self):
        together, alone = [0.5, 1.5], [1.0, 2.0]
        assert antt(together, alone) == pytest.approx(1.0 / harmonic_speedup(together, alone))

    def test_hs_bounded_by_max_ratio(self):
        together, alone = [0.7, 1.1], [1.0, 1.0]
        assert harmonic_speedup(together, alone) <= 1.1


class TestWS:
    def test_baseline_scores_one_normalized(self):
        assert weighted_speedup([1.0, 2.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_unnormalized_sums(self):
        assert weighted_speedup([2.0, 2.0], [1.0, 2.0], normalized=False) == pytest.approx(3.0)

    def test_improvement(self):
        assert weighted_speedup([1.5, 2.0], [1.0, 2.0]) == pytest.approx(1.25)


class TestWorstCase:
    def test_min_ratio(self):
        assert worst_case_speedup([0.5, 3.0], [1.0, 2.0]) == pytest.approx(0.5)

    def test_no_regression_is_one(self):
        assert worst_case_speedup([1.0, 2.0], [1.0, 2.0]) == pytest.approx(1.0)
