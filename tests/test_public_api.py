"""Top-level package API."""

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "2.2.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_policy_names(self):
        names = repro.policy_names()
        assert "baseline" in names
        assert "cmm-a" in names
        assert "ppm-group" in names  # related-work baseline
        assert len(names) == 9

    def test_make_policy(self):
        assert repro.make_policy("cmm-c").name == "cmm-c"

    def test_default_params_match_paper(self):
        p = repro.default_params()
        assert p.llc.size_bytes == 20 * 1024 * 1024

    @pytest.mark.slow
    def test_quick_run(self):
        ev = repro.quick_run("pref_unfri", mechanism="pref-cp")
        assert "pref-cp" in ev.metrics
        assert ev.metrics["pref-cp"]["hs"] > 0
