"""Trigger conditions of the four Intel-style prefetcher models."""

from repro.sim.prefetcher import (
    L1IPStridePrefetcher,
    L1NextLinePrefetcher,
    L2AdjacentLinePrefetcher,
    L2StreamerPrefetcher,
    PrefetcherBank,
)


class TestIPStride:
    def test_no_prefetch_before_confidence(self):
        p = L1IPStridePrefetcher(degree=1, confidence=2)
        assert p.on_demand(1, 100) == []
        assert p.on_demand(1, 104) == []  # stride learned, conf 0->... not yet

    def test_prefetches_after_confirmed_stride(self):
        p = L1IPStridePrefetcher(degree=2, confidence=2)
        for line in (100, 104, 108, 112):
            out = p.on_demand(1, line)
        assert out == [116, 120]

    def test_negative_stride(self):
        p = L1IPStridePrefetcher(degree=1, confidence=2)
        for line in (100, 96, 92, 88):
            out = p.on_demand(1, line)
        assert out == [84]

    def test_stride_zero_never_prefetches(self):
        p = L1IPStridePrefetcher(degree=2, confidence=1)
        out = []
        for _ in range(6):
            out = p.on_demand(1, 50)
        assert out == []

    def test_contexts_tracked_independently(self):
        p = L1IPStridePrefetcher(degree=1, confidence=2)
        for line in (0, 8, 16, 24):
            p.on_demand(1, line)
        # ctx 2 interleaved with a different stride must not pollute ctx 1
        for line in (1000, 1001, 1002, 1003):
            out2 = p.on_demand(2, line)
        out1 = p.on_demand(1, 32)
        assert out2 == [1004]
        assert out1 == [40]

    def test_table_capacity_evicts_oldest(self):
        p = L1IPStridePrefetcher(table_entries=2, degree=1, confidence=1)
        p.on_demand(1, 0)
        p.on_demand(2, 100)
        p.on_demand(3, 200)  # evicts ctx 1
        assert len(p._table) == 2
        assert 1 not in p._table

    def test_irregular_pattern_loses_confidence(self):
        p = L1IPStridePrefetcher(degree=1, confidence=2)
        for line in (0, 8, 16, 24):
            p.on_demand(1, line)      # confident, stride 8
        p.on_demand(1, 1000)          # break the stride
        out = p.on_demand(1, 2000)
        assert out == []              # confidence degraded below threshold


class TestNextLine:
    def test_next_line_on_miss(self):
        assert L1NextLinePrefetcher().on_demand_miss(41) == [42]


class TestStreamer:
    def test_requires_two_same_direction_accesses(self):
        s = L2StreamerPrefetcher(degree=2)
        assert s.on_demand(0) == []
        assert s.on_demand(1) == []  # run length 1, not yet
        assert s.on_demand(2) == [3, 4]

    def test_descending_stream(self):
        s = L2StreamerPrefetcher(degree=2)
        s.on_demand(60)
        s.on_demand(59)
        out = s.on_demand(58)
        assert out == [57, 56]

    def test_never_crosses_page_boundary(self):
        s = L2StreamerPrefetcher(degree=8)
        s.on_demand(58)
        s.on_demand(60)
        out = s.on_demand(62)
        assert all(line < 64 for line in out)

    def test_prefetch_pointer_no_reissue(self):
        """An established stream issues each line at most once."""
        s = L2StreamerPrefetcher(degree=4)
        issued = []
        for off in range(32):
            issued.extend(s.on_demand(off))
        assert len(issued) == len(set(issued))

    def test_pages_tracked_independently(self):
        s = L2StreamerPrefetcher(degree=1)
        s.on_demand(0)
        s.on_demand(64)   # other page
        s.on_demand(1)
        s.on_demand(65)
        out_a = s.on_demand(2)
        out_b = s.on_demand(66)
        assert out_a == [3]
        assert out_b == [67]

    def test_table_capacity(self):
        s = L2StreamerPrefetcher(table_pages=2)
        for page in range(4):
            s.on_demand(page * 64)
        assert len(s._table) == 2

    def test_random_same_page_gives_no_stable_stream(self):
        s = L2StreamerPrefetcher(degree=2)
        total = []
        for off in (5, 40, 2, 60, 11, 33, 7):
            total.extend(s.on_demand(off))
        # direction flips constantly; occasional bursts allowed but no
        # sustained stream
        assert len(total) <= 4


class TestAdjacent:
    def test_buddy_line(self):
        a = L2AdjacentLinePrefetcher()
        assert a.on_demand_miss(6) == [7]
        assert a.on_demand_miss(7) == [6]


class TestBank:
    def test_enable_flags_gate_candidates(self):
        b = PrefetcherBank()
        b.set_enables(stride=False, next_line=False, streamer=False, adjacent=False)
        assert b.l1_candidates(1, 10, l1_hit=False) == []
        assert b.l2_candidates(10, l2_hit=False) == []
        assert not b.any_l1_enabled
        assert not b.any_l2_enabled

    def test_next_line_only_on_miss(self):
        b = PrefetcherBank()
        b.set_enables(stride=False, next_line=True, streamer=False, adjacent=False)
        assert b.l1_candidates(1, 10, l1_hit=True) == []
        assert b.l1_candidates(1, 10, l1_hit=False) == [11]

    def test_adjacent_only_on_miss(self):
        b = PrefetcherBank()
        b.set_enables(stride=False, next_line=False, streamer=False, adjacent=True)
        assert b.l2_candidates(10, l2_hit=True) == []
        assert b.l2_candidates(10, l2_hit=False) == [11]

    def test_bank_combines_streamer_and_adjacent(self):
        b = PrefetcherBank(streamer_degree=2)
        b.l2_candidates(0, l2_hit=False)
        b.l2_candidates(1, l2_hit=False)
        out = b.l2_candidates(2, l2_hit=False)
        assert 3 in out and 4 in out  # streamer
        assert 3 in out               # adjacent buddy of 2 is 3
