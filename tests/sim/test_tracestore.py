"""Unit tests for the materialized trace plane (:mod:`repro.sim.tracestore`).

The load-bearing property is *bit-identity*: a materialized trace must
reproduce the live generator's output exactly, under every aligned
chunk partition, across the disk round-trip, and through the
shared-memory manifest path — plus a correct (still bit-identical)
fallback when a request breaks alignment or outruns the material.
"""

import numpy as np
import pytest

from repro.sim.tracestore import (
    ManifestView,
    MaterializedTrace,
    TraceStore,
    shm_residue,
    trace_cache_mode,
    trace_key,
)
from repro.workloads.speclike import benchmark, build_trace

LLC_LINES = 2048
BENCH = "410.bwaves"


def live_chunks(bench, chunks, *, base_line=0, seed=0):
    gen = build_trace(bench, llc_lines=LLC_LINES, base_line=base_line, seed=seed)
    return [gen.chunk(n) for n in chunks]


def store_chunks(store, bench, chunks, *, base_line=0, seed=0):
    trace = store.trace_for(
        bench, llc_lines=LLC_LINES, base_line=base_line, seed=seed, length=sum(chunks)
    )
    return trace, [trace.chunk(n) for n in chunks]


def assert_same_stream(got, expected):
    assert len(got) == len(expected)
    for (gc, gl), (ec, el) in zip(got, expected):
        np.testing.assert_array_equal(gc, ec)
        np.testing.assert_array_equal(gl, el)


class TestMode:
    @pytest.mark.parametrize("raw,mode", [
        ("", "disk"), ("1", "disk"), ("on", "disk"), ("auto", "disk"),
        ("disk", "disk"), ("true", "disk"),
        ("memory", "memory"), ("mem", "memory"),
        ("0", "off"), ("off", "off"), ("false", "off"), ("no", "off"),
        ("OFF", "off"), (" Disk ", "disk"),
    ])
    def test_parse(self, raw, mode):
        assert trace_cache_mode(raw) == mode

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "memory")
        assert trace_cache_mode() == "memory"
        monkeypatch.delenv("REPRO_TRACE_CACHE")
        assert trace_cache_mode() == "disk"

    def test_junk_rejected(self):
        with pytest.raises(ValueError, match="REPRO_TRACE_CACHE"):
            trace_cache_mode("sometimes")

    def test_off_store_serves_nothing(self, tmp_path):
        store = TraceStore(tmp_path, mode="off")
        assert not store.enabled
        assert store.trace_for(
            BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=256
        ) is None
        assert store.publish(
            BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=256
        ) is None


class TestTraceKey:
    def test_deterministic(self):
        a = trace_key(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0)
        b = trace_key(benchmark(BENCH), llc_lines=LLC_LINES, base_line=0, seed=0)
        assert a == b

    @pytest.mark.parametrize("kwargs", [
        {"llc_lines": LLC_LINES + 1}, {"base_line": 1 << 34}, {"seed": 7},
    ])
    def test_inputs_distinguish(self, kwargs):
        base = dict(llc_lines=LLC_LINES, base_line=0, seed=0)
        assert trace_key(BENCH, **base) != trace_key(BENCH, **{**base, **kwargs})

    def test_spec_distinguishes(self):
        base = dict(llc_lines=LLC_LINES, base_line=0, seed=0)
        assert trace_key("429.mcf", **base) != trace_key(BENCH, **base)

    def test_length_not_in_key(self):
        # Longer materializations supersede shorter ones under one key.
        store = TraceStore(None, mode="memory")
        short = store.trace_for(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=256)
        long = store.trace_for(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=1024)
        assert short.length == 256
        assert long.length >= 1024


class TestBitIdentity:
    # Chunk patterns a real run produces: machine quanta, sampling and
    # exec intervals — all multiples of the generator's burst_len (32).
    PATTERNS = [
        [512] * 8,
        [256, 256, 2048, 256, 1024],
        [32] * 16,
        [4096],
        [768, 768, 2048, 768, 2048],
    ]

    @pytest.mark.parametrize("bench", [BENCH, "429.mcf", "rand_access", "483.xalancbmk"])
    @pytest.mark.parametrize("pattern", PATTERNS, ids=[str(p[:2]) for p in PATTERNS])
    def test_aligned_replay_matches_live(self, bench, pattern):
        store = TraceStore(None, mode="memory")
        trace, got = store_chunks(store, bench, pattern)
        assert_same_stream(got, live_chunks(bench, pattern))
        assert trace.fallbacks == 0

    def test_partition_independent(self):
        # The same cumulative stream under two different partitions.
        store = TraceStore(None, mode="memory")
        _, a = store_chunks(store, BENCH, [512] * 4)
        _, b = store_chunks(store, BENCH, [1024, 1024])
        assert np.concatenate([l for _, l in a]).tolist() == \
            np.concatenate([l for _, l in b]).tolist()

    def test_zero_copy_views(self):
        store = TraceStore(None, mode="memory")
        trace = store.trace_for(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=1024)
        ctx, lines = trace.chunk(512)
        again = store.trace_for(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=1024)
        c2, l2 = again.chunk(512)
        assert np.shares_memory(lines, l2)
        assert np.shares_memory(ctx, c2)

    def test_unaligned_request_goes_live_bit_identically(self):
        store = TraceStore(None, mode="memory")
        pattern = [512, 17, 512]  # 17 breaks the 32-access alignment
        trace, got = store_chunks(store, BENCH, pattern)
        assert_same_stream(got, live_chunks(BENCH, pattern))
        assert trace.fallbacks == 1

    def test_overrun_goes_live_bit_identically(self):
        store = TraceStore(None, mode="memory")
        trace = store.trace_for(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=1024)
        pattern = [512, 512, 512, 512]  # second half outruns the material
        got = [trace.chunk(n) for n in pattern]
        assert_same_stream(got, live_chunks(BENCH, pattern))
        assert trace.fallbacks == 1

    def test_properties_mirror_generator(self):
        store = TraceStore(None, mode="memory")
        trace = store.trace_for(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=256)
        gen = build_trace(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0)
        assert trace.inst_per_mem == gen.inst_per_mem
        assert trace.mlp == gen.mlp
        assert trace.footprint_lines() == gen.footprint_lines()


class TestDiskTier:
    def test_round_trip_is_mmap_and_identical(self, tmp_path):
        a = TraceStore(tmp_path, mode="disk")
        pattern = [512] * 4
        _, first = store_chunks(a, BENCH, pattern)
        b = TraceStore(tmp_path, mode="disk")  # fresh store: disk hit
        trace, second = store_chunks(b, BENCH, pattern)
        assert_same_stream(second, first)
        base = trace._ctx
        while base is not None and not isinstance(base, np.memmap):
            base = base.base
        assert isinstance(base, np.memmap)

    def test_stats_and_clear(self, tmp_path):
        store = TraceStore(tmp_path, mode="disk")
        store.trace_for(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=512)
        store.trace_for("429.mcf", llc_lines=LLC_LINES, base_line=0, seed=0, length=512)
        s = store.stats()
        assert s.root == tmp_path
        assert s.entries == 2
        assert s.bytes >= 2 * (2 * 512 * 8)
        assert store.clear() == 2
        assert store.stats().entries == 0

    def test_short_disk_entry_regenerated_longer(self, tmp_path):
        a = TraceStore(tmp_path, mode="disk")
        a.trace_for(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=256)
        b = TraceStore(tmp_path, mode="disk")
        long = b.trace_for(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=2048)
        assert long.length >= 2048
        got = [long.chunk(512) for _ in range(4)]
        assert_same_stream(got, live_chunks(BENCH, [512] * 4))

    def test_corrupt_meta_misses(self, tmp_path):
        store = TraceStore(tmp_path, mode="disk")
        store.trace_for(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=256)
        for meta in tmp_path.glob("*/*.json"):
            meta.write_text("{ not json")
        fresh = TraceStore(tmp_path, mode="disk")
        trace = fresh.trace_for(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=256)
        got = [trace.chunk(256)]
        assert_same_stream(got, live_chunks(BENCH, [256]))

    def test_memory_mode_writes_nothing(self, tmp_path):
        store = TraceStore(tmp_path, mode="memory")
        store.trace_for(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=256)
        assert store.root is None
        assert list(tmp_path.iterdir()) == []


class TestPublishAndManifest:
    def test_manifest_round_trip_identical(self):
        store = TraceStore(None, mode="memory")
        try:
            item = store.publish(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=1024)
            if item is None:
                pytest.skip("shared memory unavailable on this platform")
            view = ManifestView({item["key"]: item})
            trace = view.trace_for(
                BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=1024
            )
            got = [trace.chunk(512), trace.chunk(512)]
            assert_same_stream(got, live_chunks(BENCH, [512, 512]))
            assert trace.fallbacks == 0
        finally:
            store.close()
        assert shm_residue() == []

    def test_manifest_misses_return_none(self):
        view = ManifestView({})
        assert view.trace_for(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=64) is None

    def test_manifest_too_short_returns_none(self):
        store = TraceStore(None, mode="memory")
        try:
            item = store.publish(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=256)
            if item is None:
                pytest.skip("shared memory unavailable on this platform")
            view = ManifestView({item["key"]: item})
            assert view.trace_for(
                BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=100_000
            ) is None
        finally:
            store.close()

    def test_republish_reuses_segment(self):
        store = TraceStore(None, mode="memory")
        try:
            a = store.publish(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=512)
            if a is None:
                pytest.skip("shared memory unavailable on this platform")
            b = store.publish(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=512)
            assert a["shm"] == b["shm"]
            assert store.stats().shm_segments == 1
        finally:
            store.close()
        assert shm_residue() == []

    def test_longer_publish_supersedes(self):
        store = TraceStore(None, mode="memory")
        try:
            a = store.publish(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=256)
            if a is None:
                pytest.skip("shared memory unavailable on this platform")
            b = store.publish(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=4096)
            assert b["length"] >= 4096
            assert store.stats().shm_segments == 1  # old segment unlinked
        finally:
            store.close()
        assert shm_residue() == []

    def test_close_is_idempotent(self):
        store = TraceStore(None, mode="memory")
        store.publish(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=256)
        store.close()
        store.close()
        assert shm_residue() == []

    def test_finalizer_releases_on_gc(self):
        store = TraceStore(None, mode="memory")
        item = store.publish(BENCH, llc_lines=LLC_LINES, base_line=0, seed=0, length=256)
        if item is None:
            pytest.skip("shared memory unavailable on this platform")
        del store  # never closed — the weakref.finalize backstop fires
        assert shm_residue() == []
