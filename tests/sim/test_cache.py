"""LRU behaviour, CAT way masking, and prefetch-bit accounting."""

import pytest

from repro.sim.cache import Cache, PartitionedCache, ways_from_mask
from repro.sim.params import CacheGeometry


def geom(sets: int, ways: int) -> CacheGeometry:
    return CacheGeometry(sets * ways * 64, ways)


class TestCacheBasics:
    def test_miss_then_hit(self):
        c = Cache(geom(4, 2))
        assert c.access(10) is False
        assert c.access(10) is True

    def test_distinct_sets_do_not_conflict(self):
        c = Cache(geom(4, 1))
        assert c.access(0) is False
        assert c.access(1) is False  # different set
        assert c.access(0) is True
        assert c.access(1) is True

    def test_lru_eviction_order(self):
        c = Cache(geom(1, 2))  # one set, two ways
        c.access(0)
        c.access(1)
        c.access(0)       # 1 is now LRU
        c.access(2)       # evicts 1
        assert c.probe(0)
        assert not c.probe(1)
        assert c.probe(2)

    def test_hit_refreshes_lru(self):
        c = Cache(geom(1, 2))
        c.access(0)
        c.access(1)
        c.access(0)
        c.access(1)  # order now: 1 MRU, 0 LRU
        c.access(2)  # evicts 0
        assert not c.probe(0)
        assert c.probe(1)

    def test_occupancy_bounded_by_capacity(self):
        g = geom(4, 2)
        c = Cache(g)
        for line in range(100):
            c.access(line)
        assert c.occupancy() <= g.lines

    def test_probe_does_not_change_state(self):
        c = Cache(geom(1, 2))
        c.access(0)
        c.access(1)
        c.probe(0)   # must NOT refresh 0's LRU position
        c.access(2)  # evicts 0 (still LRU despite probe)
        assert not c.probe(0)

    def test_flush_empties(self):
        c = Cache(geom(4, 2))
        c.access(1)
        c.flush()
        assert c.occupancy() == 0
        assert not c.probe(1)

    def test_stats_counts(self):
        c = Cache(geom(4, 2))
        c.access(1)
        c.access(1)
        c.access(2)
        assert c.stats.accesses == 3
        assert c.stats.hits == 1
        assert c.stats.misses == 2


class TestCachePrefetchAccounting:
    def test_used_prefetch_counted(self):
        c = Cache(geom(4, 2))
        c.access(5, is_prefetch=True)
        assert c.stats.pref_fills == 1
        c.access(5)  # demand use
        assert c.stats.pref_used == 1
        assert c.stats.prefetch_accuracy == 1.0

    def test_unused_prefetch_eviction_counted(self):
        c = Cache(geom(1, 1))
        c.access(3, is_prefetch=True)
        c.access(4)  # evicts the never-used prefetch
        assert c.stats.pref_evicted_unused == 1
        assert c.stats.prefetch_accuracy == 0.0

    def test_prefetch_hit_does_not_consume_used_bit(self):
        c = Cache(geom(4, 2))
        c.access(5, is_prefetch=True)
        c.access(5, is_prefetch=True)  # second prefetch hit: not a demand use
        assert c.stats.pref_used == 0
        c.access(5)
        assert c.stats.pref_used == 1


class TestWaysFromMask:
    def test_full_mask(self):
        assert ways_from_mask(0xF, 4) == (0, 1, 2, 3)

    def test_partial_mask(self):
        assert ways_from_mask(0b0110, 4) == (1, 2)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ways_from_mask(0, 4)

    def test_rejects_oversized(self):
        with pytest.raises(ValueError):
            ways_from_mask(0x1F, 4)


class TestPartitionedCache:
    def test_miss_then_hit(self):
        p = PartitionedCache(geom(4, 4))
        ways = (0, 1, 2, 3)
        assert p.access(9, ways) is False
        assert p.access(9, ways) is True

    def test_fill_restricted_to_allowed_ways(self):
        p = PartitionedCache(geom(1, 4))
        for line in range(0, 12):
            p.access(line, (0, 1))
        # Only ways 0 and 1 were ever filled.
        for line in range(12):
            w = p.resident_way(line)
            assert w in (None, 0, 1)
        assert p.occupancy() == 2

    def test_hit_allowed_in_any_way(self):
        p = PartitionedCache(geom(1, 4))
        p.access(7, (3,))         # core A fills way 3
        assert p.access(7, (0, 1)) is True  # core B hits it anyway

    def test_lru_victim_among_allowed_ways(self):
        p = PartitionedCache(geom(1, 4))
        p.access(1, (0, 1))
        p.access(2, (0, 1))
        p.access(1, (0, 1))      # 2 is LRU of the allowed pair
        p.access(3, (0, 1))      # must evict 2
        assert p.probe(1)
        assert not p.probe(2)
        assert p.probe(3)

    def test_partition_isolation(self):
        """A core confined to its ways cannot evict another's lines."""
        p = PartitionedCache(geom(1, 4))
        p.access(100, (0, 1))
        p.access(101, (0, 1))
        for line in range(50):
            p.access(200 + line, (2, 3))
        assert p.probe(100)
        assert p.probe(101)

    def test_overlapping_masks_share_ways(self):
        p = PartitionedCache(geom(1, 2))
        p.access(1, (0, 1))
        p.access(2, (0, 1))
        p.access(3, (0,))    # overlapping partition evicts from way 0
        assert p.occupancy() == 2

    def test_empty_allowed_ways_rejected(self):
        p = PartitionedCache(geom(1, 2))
        with pytest.raises(ValueError):
            p.access(1, ())

    def test_occupancy_in_ways(self):
        p = PartitionedCache(geom(2, 4))
        p.access(0, (0, 1))
        p.access(1, (0, 1))
        assert p.occupancy_in_ways((0, 1)) == 2
        assert p.occupancy_in_ways((2, 3)) == 0

    def test_flush(self):
        p = PartitionedCache(geom(2, 2))
        p.access(5, (0, 1), is_prefetch=True)
        p.flush()
        assert p.occupancy() == 0
        assert not p.probe(5)

    def test_prefetch_accuracy_tracking(self):
        p = PartitionedCache(geom(2, 2))
        p.access(4, (0, 1), is_prefetch=True)
        p.access(4, (0, 1))
        assert p.stats.pref_used == 1
        assert p.stats.prefetch_accuracy == 1.0


class TestTouchUsed:
    def test_touch_consumes_used_bit(self):
        c = Cache(geom(4, 2))
        c.access(5, is_prefetch=True)
        assert c.touch_used(5) is True
        assert c.stats.pref_used == 1
        # later demand access must not double count
        c.access(5)
        assert c.stats.pref_used == 1

    def test_touch_missing_line(self):
        c = Cache(geom(4, 2))
        assert c.touch_used(9) is False
        assert c.stats.pref_used == 0

    def test_touch_refreshes_lru(self):
        c = Cache(geom(1, 2))
        c.access(0)
        c.access(1)
        c.touch_used(0)   # 0 becomes MRU
        c.access(2)       # evicts 1
        assert c.probe(0)
        assert not c.probe(1)

    def test_touch_counts_no_access(self):
        c = Cache(geom(4, 2))
        c.access(5)
        before = c.stats.accesses
        c.touch_used(5)
        assert c.stats.accesses == before
