"""Trace generator behaviour and determinism."""

import numpy as np
import pytest

from repro.sim.trace import (
    IdleTrace,
    PointerChaseStream,
    RandomStream,
    SequentialStream,
    StridedStream,
    TraceGenerator,
)


class TestSequentialStream:
    def test_repeats_spatial_locality(self):
        s = SequentialStream(1, 0, region_lines=10, repeats=3)
        out = s.burst(9)
        np.testing.assert_array_equal(out, [0, 0, 0, 1, 1, 1, 2, 2, 2])

    def test_wraps_region(self):
        s = SequentialStream(1, 0, region_lines=4, repeats=1)
        out = s.burst(6)
        np.testing.assert_array_equal(out, [0, 1, 2, 3, 0, 1])

    def test_base_offset(self):
        s = SequentialStream(1, 1000, region_lines=4, repeats=1)
        assert s.burst(1)[0] == 1000

    def test_state_persists_between_bursts(self):
        s = SequentialStream(1, 0, region_lines=100, repeats=1)
        a = s.burst(3)
        b = s.burst(3)
        np.testing.assert_array_equal(np.concatenate([a, b]), range(6))

    def test_rejects_zero_stride(self):
        with pytest.raises(ValueError):
            SequentialStream(1, 0, 10, stride=0)

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            SequentialStream(1, 0, 10, repeats=0)


class TestStridedStream:
    def test_touches_each_line_once(self):
        s = StridedStream(1, 0, region_lines=64, stride=16)
        out = s.burst(4)
        np.testing.assert_array_equal(out, [0, 16, 32, 48])


class TestRandomStream:
    def test_within_region(self):
        s = RandomStream(1, 100, 50, np.random.default_rng(0))
        out = s.burst(200)
        assert out.min() >= 100
        assert out.max() < 150

    def test_seeded_reproducibility(self):
        a = RandomStream(1, 0, 1000, np.random.default_rng(7)).burst(50)
        b = RandomStream(1, 0, 1000, np.random.default_rng(7)).burst(50)
        np.testing.assert_array_equal(a, b)


class TestPointerChase:
    def test_visits_every_line_once_per_lap(self):
        s = PointerChaseStream(1, 0, 32, np.random.default_rng(3), repeats=1)
        lap = s.burst(32)
        assert sorted(lap) == list(range(32))

    def test_same_order_every_lap(self):
        s = PointerChaseStream(1, 0, 16, np.random.default_rng(3), repeats=1)
        lap1 = s.burst(16)
        lap2 = s.burst(16)
        np.testing.assert_array_equal(lap1, lap2)

    def test_repeats(self):
        s = PointerChaseStream(1, 0, 8, np.random.default_rng(3), repeats=2)
        out = s.burst(6)
        assert out[0] == out[1]
        assert out[2] == out[3]
        assert out[4] == out[5]

    def test_order_is_shuffled(self):
        s = PointerChaseStream(1, 0, 64, np.random.default_rng(3), repeats=1)
        lap = s.burst(64)
        assert not np.array_equal(lap, np.arange(64))


class TestTraceGenerator:
    def test_chunk_shapes(self):
        gen = TraceGenerator([SequentialStream(9, 0, 100)], [1.0], seed=0)
        ctx, lines = gen.chunk(37)
        assert len(ctx) == len(lines) == 37
        assert (ctx == 9).all()

    def test_seeded_determinism(self):
        def make():
            return TraceGenerator(
                [SequentialStream(1, 0, 100), RandomStream(2, 10_000, 500, np.random.default_rng(5))],
                [1.0, 1.0],
                seed=42,
            )
        _, a = make().chunk(500)
        _, b = make().chunk(500)
        np.testing.assert_array_equal(a, b)

    def test_mixture_uses_both_streams(self):
        gen = TraceGenerator(
            [SequentialStream(1, 0, 100), SequentialStream(2, 10_000, 100)],
            [1.0, 1.0],
            burst_len=8,
            seed=0,
        )
        ctx, _ = gen.chunk(1000)
        assert set(np.unique(ctx)) == {1, 2}

    def test_weight_zero_sum_rejected(self):
        with pytest.raises(ValueError):
            TraceGenerator([SequentialStream(1, 0, 10)], [0.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            TraceGenerator([SequentialStream(1, 0, 10)], [1.0, 2.0])

    def test_bad_mlp_rejected(self):
        with pytest.raises(ValueError):
            TraceGenerator([SequentialStream(1, 0, 10)], [1.0], mlp=0.5)

    def test_footprint(self):
        gen = TraceGenerator(
            [SequentialStream(1, 0, 100), SequentialStream(2, 10_000, 50)], [1.0, 1.0]
        )
        assert gen.footprint_lines() == 150


class TestIdleTrace:
    def test_produces_nothing(self):
        t = IdleTrace()
        ctx, lines = t.chunk(100)
        assert len(ctx) == 0
        assert len(lines) == 0
        assert t.footprint_lines() == 0
