"""Differential and forced-fallback tests for the compiled kernel tier.

The ``native`` engine (``repro.sim.nativekernels``) fuses the grouped
LLC serve, the masked-lockstep core advance and the scalar fast
engine's per-access loops into numba-JIT-able kernels.  Nothing about
that tier may be observable in results: under ``REPRO_NATIVE_KERNELS=
force`` (interpreted kernels — the test hook that works without numba,
and exercises the exact code numba compiles) every PMU total, wall
cycle, LLC stat and occupancy must match the pure-NumPy/dict paths bit
for bit; and whenever the tier is unavailable (env off, numba absent,
a kernel raising) it must degrade to those paths bit-identically while
counting the fallback.

Digest discipline mirrors ``test_batch_engine``: one sha256 over every
run's totals and wall cycles, compared across lanes.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np
import pytest

from repro.experiments.batch import BatchRunSpec, simulate_batch
from repro.experiments.config import ScaleConfig
from repro.experiments.runner import build_machine
from repro.sim import PF_ALL_OFF, PF_ALL_ON, Machine
from repro.sim import nativekernels
from repro.sim.engines import ENGINE_FAST, ENGINE_NATIVE, resolve_engine
from repro.sim.engines import ENV_VAR as SIM_ENGINE_ENV
from repro.sim.nativekernels import ENV_VAR as NATIVE_ENV
from repro.sim.pmu import PmuSample
from repro.sim.tracestore import TraceStore
from repro.workloads.mixes import make_mixes

SC = ScaleConfig(name="native-unit", llc_scale=16, n_cores=4, quantum=512)
MECH_SC = dataclasses.replace(SC, sample_units=512, exec_units=2048, n_epochs=1)
N_ACCESSES = 6000

CATEGORIES = ("pref_agg", "pref_unfri", "pref_no_agg")
WIDTHS = (1, 3, 8)
AXES = ("shared", "cat", "mixed")

MASKS = {
    "pf_on": (PF_ALL_ON,) * 4,
    "pf_off": (PF_ALL_OFF,) * 4,
    "pf_mixed": (0x5, 0xA, 0x3, 0xC),
}


@pytest.fixture(scope="module")
def store():
    return TraceStore(None, mode="memory")


@pytest.fixture(autouse=True)
def _tier_hygiene():
    """Tier decisions are cached process-wide; never leak one test's
    forced/disabled state into the next test (or the rest of the suite)."""
    nativekernels._reset_for_tests()
    yield
    nativekernels._reset_for_tests()


@pytest.fixture
def forced(monkeypatch):
    monkeypatch.setenv(NATIVE_ENV, "force")
    nativekernels._reset_for_tests()
    yield


@pytest.fixture
def native_off(monkeypatch):
    monkeypatch.setenv(NATIVE_ENV, "off")
    nativekernels._reset_for_tests()
    yield


def _mix(category):
    return make_mixes(category, 1, n_cores=4, seed=2019)[0]


def _cat_split(k, w, n_cores):
    cbm0 = (1 << k) - 1
    cbm1 = ((1 << w) - 1) ^ cbm0
    return ((0, cbm0), (1, cbm1)), tuple(c % 2 for c in range(n_cores))


def _specs(mix, masks, axis, width):
    """``width`` static specs: all shared, all CAT (distinct split per
    run) or mixed (runs alternate shared/partitioned)."""
    w = SC.params().llc.ways
    out = []
    for i in range(width):
        clos_cbms, core_clos = (), ()
        if axis == "cat" or (axis == "mixed" and i % 2):
            clos_cbms, core_clos = _cat_split(2 + i, w, mix.n_cores)
        out.append(
            BatchRunSpec(
                mix=mix,
                n_accesses=N_ACCESSES,
                masks=masks,
                clos_cbms=clos_cbms,
                core_clos=core_clos,
            )
        )
    return out


def _digest(stats_list):
    h = hashlib.sha256()
    for rs in stats_list:
        h.update(np.ascontiguousarray(rs.totals).tobytes())
        h.update(repr(rs.wall_cycles).encode())
    return h.hexdigest()


def _scalar_observables(m: Machine) -> dict:
    sample = PmuSample(m.pmu.counts.copy(), m.pmu.wall_cycles)
    out = {"pmu": m.pmu.counts.copy(), "ipc": sample.ipc_all()}
    for i, cs in enumerate(m.cores):
        for lvl in ("l1", "l2"):
            s = getattr(cs, lvl).stats
            out[f"{lvl}{i}"] = (
                s.accesses,
                s.hits,
                s.pref_fills,
                s.pref_used,
                s.pref_evicted_unused,
            )
        out[f"occ_l1_{i}"] = cs.l1.occupancy()
        out[f"occ_l2_{i}"] = cs.l2.occupancy()
    s = m.llc.stats
    out["llc"] = (s.accesses, s.hits, s.pref_fills, s.pref_used, s.pref_evicted_unused)
    out["llc_occ"] = m.llc.occupancy()
    return out


def _assert_identical(ref: dict, native: dict, label: str) -> None:
    for key in ref:
        a, b = ref[key], native[key]
        if isinstance(a, np.ndarray):
            assert np.array_equal(a, b), f"{label}: {key} diverged"
        else:
            assert a == b, f"{label}: {key} diverged (fast={a}, native={b})"


def _scalar_machine(store, engine, mix, masks, partitioned):
    m = build_machine(mix, SC, trace_store=store, engine=engine)
    for cpu, mask in enumerate(masks):
        m.prefetch_msr.set_mask(cpu, mask)
    if partitioned:
        w = m.params.llc.ways
        clos_cbms, core_clos = _cat_split(w // 2, w, mix.n_cores)
        for clos, cbm in clos_cbms:
            m.cat.set_cbm(clos, cbm)
        for cpu, clos in enumerate(core_clos):
            m.cat.assign_core(cpu, clos)
    return m


class TestNativeScalarBitIdentity:
    """Forced-native scalar machines vs. the fast engine, every
    observable the experiment layer consumes."""

    @pytest.mark.parametrize("category", CATEGORIES)
    @pytest.mark.parametrize("mask_name", sorted(MASKS))
    @pytest.mark.parametrize("partitioned", [False, True], ids=["shared", "cat"])
    def test_bit_identical(self, store, forced, category, mask_name, partitioned):
        mix = _mix(category)
        fast = _scalar_machine(store, ENGINE_FAST, mix, MASKS[mask_name], partitioned)
        native = _scalar_machine(store, ENGINE_NATIVE, mix, MASKS[mask_name], partitioned)
        assert native.native_fallbacks() == 0, "forced tier did not engage"
        fast.run_accesses(N_ACCESSES)
        native.run_accesses(N_ACCESSES)
        _assert_identical(
            _scalar_observables(fast),
            _scalar_observables(native),
            f"{category}/{mask_name}/{'cat' if partitioned else 'shared'}",
        )

    def test_midrun_control_flips(self, store, forced):
        """Mask and CAT flips between quanta land identically on the
        array-backed caches and prefetcher tables."""
        mix = _mix("pref_agg")
        machines = [
            _scalar_machine(store, e, mix, MASKS["pf_on"], False)
            for e in (ENGINE_FAST, ENGINE_NATIVE)
        ]
        for m in machines:
            m.run_accesses(3000)
            m.prefetch_msr.set_mask(0, PF_ALL_OFF)
            m.prefetch_msr.set_mask(2, 0x9)
            w = m.params.llc.ways
            m.cat.set_cbm(0, (1 << (w // 4)) - 1)
            for cpu in range(mix.n_cores):
                m.cat.assign_core(cpu, 0)
            m.run_accesses(3000)
        _assert_identical(
            _scalar_observables(machines[0]), _scalar_observables(machines[1]), "midrun"
        )

    def test_idle_cores(self, store, forced):
        machines = []
        for e in (ENGINE_FAST, ENGINE_NATIVE):
            m = _scalar_machine(store, e, _mix("pref_unfri"), MASKS["pf_mixed"], True)
            m.set_idle(1)
            m.run_accesses(4000)
            machines.append(m)
        _assert_identical(
            _scalar_observables(machines[0]), _scalar_observables(machines[1]), "idle"
        )


# Latin square over (category, axis) -> width: each (category, axis)
# cell runs once, and every axis and every category sees every batch
# width across the matrix without the full 27-run cross product.
def _width_for(category, axis):
    return WIDTHS[(CATEGORIES.index(category) + AXES.index(axis)) % len(WIDTHS)]


class TestNativeBatchSha256:
    """Forced-native batched sweeps vs. the pure-NumPy lockstep lanes:
    the full-result sha256 must be identical, with zero fallbacks."""

    @pytest.mark.parametrize("category", CATEGORIES)
    @pytest.mark.parametrize("axis", AXES)
    def test_static_matrix(self, store, monkeypatch, category, axis):
        width = _width_for(category, axis)
        specs = _specs(_mix(category), MASKS["pf_mixed"], axis, width)

        monkeypatch.setenv(NATIVE_ENV, "off")
        nativekernels._reset_for_tests()
        pure = simulate_batch(specs, SC, trace_store=store)

        monkeypatch.setenv(NATIVE_ENV, "force")
        nativekernels._reset_for_tests()
        before = nativekernels.native_fallback_count()
        native = simulate_batch(specs, SC, trace_store=store)

        label = f"{category}/{axis}/w{width}"
        assert _digest(native) == _digest(pure), f"{label}: digest diverged"
        assert nativekernels.native_fallback_count() == before, f"{label}: fell back"

    @pytest.mark.parametrize("category", CATEGORIES)
    def test_dynamic_mechanisms(self, store, monkeypatch, category):
        """Controller-driven lockstep runs flip masks and CAT every
        epoch; the native tier must reproduce them exactly."""
        mix = _mix(category)
        specs = [BatchRunSpec(mix=mix, mechanism=m) for m in ("pt", "cmm-a")]

        monkeypatch.setenv(NATIVE_ENV, "off")
        nativekernels._reset_for_tests()
        pure = simulate_batch(specs, MECH_SC, trace_store=store)

        monkeypatch.setenv(NATIVE_ENV, "force")
        nativekernels._reset_for_tests()
        native = simulate_batch(specs, MECH_SC, trace_store=store)

        assert _digest(native) == _digest(pure), f"{category}: digest diverged"


class TestForcedFallback:
    """Every unavailability path degrades bit-identically and counts."""

    def test_env_off_disables_and_counts(self, store, native_off):
        assert not nativekernels.kernels_enabled()
        before = nativekernels.native_fallback_count()
        mix = _mix("pref_agg")
        fast = _scalar_machine(store, ENGINE_FAST, mix, MASKS["pf_mixed"], True)
        native = _scalar_machine(store, ENGINE_NATIVE, mix, MASKS["pf_mixed"], True)
        assert native.native_fallbacks() == 1
        assert nativekernels.native_fallback_count() == before + 1
        fast.run_accesses(4000)
        native.run_accesses(4000)
        _assert_identical(
            _scalar_observables(fast), _scalar_observables(native), "env-off"
        )

    def test_numba_absent_auto_falls_back(self, store, monkeypatch):
        """``auto`` without an importable numba is the stock degraded
        install: requesting ``native`` runs the fast paths unchanged."""
        monkeypatch.delenv(NATIVE_ENV, raising=False)
        monkeypatch.setattr(nativekernels, "_numba", None)
        nativekernels._reset_for_tests()
        assert not nativekernels.kernels_enabled()
        mix = _mix("pref_unfri")
        fast = _scalar_machine(store, ENGINE_FAST, mix, MASKS["pf_on"], False)
        native = _scalar_machine(store, ENGINE_NATIVE, mix, MASKS["pf_on"], False)
        assert native.native_fallbacks() == 1
        fast.run_accesses(4000)
        native.run_accesses(4000)
        _assert_identical(
            _scalar_observables(fast), _scalar_observables(native), "no-numba"
        )

    def test_raising_kernel_fails_selfcheck(self, store, monkeypatch):
        """A kernel that raises at first call (e.g. a numba compile
        error) fails the off-clock self-check: the tier stays off for
        the process, the fallback is counted, results are unchanged."""

        def _boom(*args, **kwargs):
            raise RuntimeError("synthetic kernel failure")

        monkeypatch.setenv(NATIVE_ENV, "force")
        monkeypatch.setattr(nativekernels, "K_SERVE_LLC", _boom)
        nativekernels._reset_for_tests()
        before = nativekernels.native_fallback_count()
        assert not nativekernels.kernels_enabled()
        assert nativekernels.native_fallback_count() == before + 1
        mix = _mix("pref_no_agg")
        fast = _scalar_machine(store, ENGINE_FAST, mix, MASKS["pf_mixed"], True)
        native = _scalar_machine(store, ENGINE_NATIVE, mix, MASKS["pf_mixed"], True)
        assert native.native_fallbacks() == 1
        fast.run_accesses(4000)
        native.run_accesses(4000)
        _assert_identical(
            _scalar_observables(fast), _scalar_observables(native), "raising-kernel"
        )

    def test_runtime_failure_degrades_batch_bit_identically(
        self, store, monkeypatch
    ):
        """A kernel raising *mid-run* (after the self-check passed)
        sticky-disables the tier; the batch plane's degradation path
        reruns the affected runs on fresh pure-path machines and the
        results still match the native-off lane exactly."""
        specs = _specs(_mix("pref_agg"), MASKS["pf_mixed"], "cat", 3)

        monkeypatch.setenv(NATIVE_ENV, "off")
        nativekernels._reset_for_tests()
        pure = simulate_batch(specs, SC, trace_store=store)

        monkeypatch.setenv(NATIVE_ENV, "force")
        nativekernels._reset_for_tests()
        assert nativekernels.kernels_enabled()  # self-check warm, tier live

        def _boom(*args, **kwargs):
            raise RuntimeError("synthetic mid-run kernel failure")

        monkeypatch.setattr(nativekernels, "K_SERVE_LLC", _boom)
        before = nativekernels.native_fallback_count()
        degraded = simulate_batch(specs, SC, trace_store=store)

        assert _digest(degraded) == _digest(pure), "degraded lane diverged"
        assert nativekernels.native_fallback_count() > before
        status = nativekernels.tier_status()
        assert not status["enabled"]
        assert "kernel failed" in (status["disabled_reason"] or "")

    def test_disable_runtime_is_sticky_under_force(self, monkeypatch):
        monkeypatch.setenv(NATIVE_ENV, "force")
        nativekernels._reset_for_tests()
        assert nativekernels.kernels_enabled()
        nativekernels.disable_runtime("unit test")
        assert not nativekernels.kernels_enabled()
        assert nativekernels.tier_status()["disabled_reason"] == "unit test"


class TestTierIntrospection:
    def test_tier_status_shape(self):
        status = nativekernels.tier_status()
        assert set(status) == {"numba", "mode", "enabled", "fallbacks", "disabled_reason"}
        assert status["mode"] in ("off", "auto", "force")
        assert isinstance(status["fallbacks"], int)

    def test_force_mode_enables_without_numba(self, forced):
        """``force`` runs the interpreted kernels — the no-numba test
        hook this whole module leans on."""
        assert nativekernels.kernels_enabled()

    def test_auto_resolution_tracks_tier(self, monkeypatch):
        monkeypatch.delenv(SIM_ENGINE_ENV, raising=False)
        monkeypatch.setenv(NATIVE_ENV, "force")
        nativekernels._reset_for_tests()
        assert resolve_engine(None).name == ENGINE_NATIVE
        monkeypatch.setenv(NATIVE_ENV, "off")
        nativekernels._reset_for_tests()
        assert resolve_engine(None).name == ENGINE_FAST
