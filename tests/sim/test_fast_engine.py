"""Differential tests: the ``fast`` engine is bit-identical to ``reference``.

Every observable the experiment layer consumes — PMU counters, per-core
L1/L2 cache stats, LLC stats and occupancy, IPC and its harmonic mean —
must match exactly (integer counters bit for bit, IPC as identical
floats) across workload mixes, per-core prefetcher masks and CAT
partitionings.  This is what lets the experiment cache key exclude the
engine choice (see ``repro.sim.engines``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics_defs import hm_ipc, summarize_sample
from repro.sim import PF_ALL_OFF, PF_ALL_ON, Machine
from repro.sim.engines import (
    DEFAULT_ENGINE,
    ENGINE_FAST,
    ENGINE_REFERENCE,
    ENV_VAR,
    resolve_engine,
)
from repro.sim.params import scaled_params
from repro.sim.pmu import PmuSample
from repro.workloads.speclike import build_trace

# Three 4-core mixes spanning the trace taxonomy: streaming/prefetch
# friendly, irregular/prefetch hostile, and a blend.
MIXES = {
    "stream_heavy": ["410.bwaves", "462.libquantum", "433.milc", "450.soplex"],
    "irregular": ["rand_access", "429.mcf", "471.omnetpp", "483.xalancbmk"],
    "blend": ["410.bwaves", "rand_access", "453.povray", "416.gamess"],
}

MASKS = {
    "pf_on": [PF_ALL_ON] * 4,
    "pf_off": [PF_ALL_OFF] * 4,
    "pf_mixed": [0x5, 0xA, 0x3, 0xC],  # distinct per-core enable subsets
}

N_ACCESSES = 6000


def _build(engine, mix, masks, partitioned):
    params = scaled_params(16, n_cores=4)
    m = Machine(params, quantum=512, engine=engine)
    for cpu, name in enumerate(mix):
        m.attach_trace(
            cpu,
            build_trace(
                name,
                llc_lines=params.llc.lines,
                base_line=m.core_base_line(cpu),
                seed=cpu,
            ),
        )
    for cpu, mask in enumerate(masks):
        m.prefetch_msr.set_mask(cpu, mask)
    if partitioned:
        w = params.llc.ways
        half = (1 << (w // 2)) - 1
        m.cat.set_cbm(0, half)
        m.cat.set_cbm(1, ((1 << w) - 1) ^ half)
        for cpu in range(len(mix)):
            m.cat.assign_core(cpu, cpu % 2)
    return m


def _observables(m: Machine) -> dict:
    sample = PmuSample(m.pmu.counts.copy(), m.pmu.wall_cycles)
    out = {"pmu": m.pmu.counts.copy(), "ipc": sample.ipc_all()}
    for i, cs in enumerate(m.cores):
        for lvl in ("l1", "l2"):
            s = getattr(cs, lvl).stats
            out[f"{lvl}{i}"] = (
                s.accesses,
                s.hits,
                s.pref_fills,
                s.pref_used,
                s.pref_evicted_unused,
            )
        out[f"occ_l1_{i}"] = cs.l1.occupancy()
        out[f"occ_l2_{i}"] = cs.l2.occupancy()
    s = m.llc.stats
    out["llc"] = (s.accesses, s.hits, s.pref_fills, s.pref_used, s.pref_evicted_unused)
    out["llc_occ"] = m.llc.occupancy()
    out["hm_ipc"] = hm_ipc(summarize_sample(sample, cycles_per_second=1e9))
    return out


def _assert_identical(ref: dict, fast: dict, label: str) -> None:
    for key in ref:
        a, b = ref[key], fast[key]
        if isinstance(a, np.ndarray):
            assert np.array_equal(a, b), f"{label}: {key} diverged"
        else:
            assert a == b, f"{label}: {key} diverged (ref={a}, fast={b})"


class TestEngineEquivalence:
    @pytest.mark.parametrize("mix_name", sorted(MIXES))
    @pytest.mark.parametrize("mask_name", sorted(MASKS))
    @pytest.mark.parametrize("partitioned", [False, True], ids=["shared", "cat"])
    def test_bit_identical(self, mix_name, mask_name, partitioned):
        mix, masks = MIXES[mix_name], MASKS[mask_name]
        ref = _build(ENGINE_REFERENCE, mix, masks, partitioned)
        fast = _build(ENGINE_FAST, mix, masks, partitioned)
        ref.run_accesses(N_ACCESSES)
        fast.run_accesses(N_ACCESSES)
        _assert_identical(
            _observables(ref),
            _observables(fast),
            f"{mix_name}/{mask_name}/{'cat' if partitioned else 'shared'}",
        )

    def test_identical_across_midrun_control_changes(self):
        """Mask and CAT flips between quanta are picked up identically."""
        mix = MIXES["blend"]
        machines = [
            _build(e, mix, MASKS["pf_on"], False)
            for e in (ENGINE_REFERENCE, ENGINE_FAST)
        ]
        for m in machines:
            m.run_accesses(3000)
            m.prefetch_msr.set_mask(0, PF_ALL_OFF)
            m.prefetch_msr.set_mask(2, 0x9)
            w = m.params.llc.ways
            m.cat.set_cbm(0, (1 << (w // 4)) - 1)
            for cpu in range(4):
                m.cat.assign_core(cpu, 0)
            m.run_accesses(3000)
        _assert_identical(
            _observables(machines[0]), _observables(machines[1]), "midrun"
        )

    def test_identical_with_idle_cores(self):
        machines = []
        for e in (ENGINE_REFERENCE, ENGINE_FAST):
            m = _build(e, MIXES["irregular"], MASKS["pf_mixed"], True)
            m.set_idle(1)
            m.run_accesses(4000)
            machines.append(m)
        _assert_identical(
            _observables(machines[0]), _observables(machines[1]), "idle"
        )


class TestEngineSelection:
    def test_default_is_fast(self, tiny_params, monkeypatch):
        """Auto resolution lands on the compiled tier when it is usable
        and on the default fast engine otherwise."""
        from repro.sim import nativekernels
        from repro.sim.engines import ENGINE_NATIVE

        monkeypatch.delenv(ENV_VAR, raising=False)
        expected = (
            ENGINE_NATIVE if nativekernels.kernels_enabled() else DEFAULT_ENGINE
        )
        assert DEFAULT_ENGINE == ENGINE_FAST
        assert Machine(tiny_params).engine == expected

    def test_env_var_selects(self, tiny_params, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "reference")
        assert Machine(tiny_params).engine == ENGINE_REFERENCE

    def test_params_field_beats_env(self, tiny_params, monkeypatch):
        from dataclasses import replace

        monkeypatch.setenv(ENV_VAR, "fast")
        params = replace(tiny_params, sim_engine="reference")
        assert Machine(params).engine == ENGINE_REFERENCE

    def test_explicit_arg_beats_params(self, tiny_params):
        from dataclasses import replace

        params = replace(tiny_params, sim_engine="reference")
        assert Machine(params, engine="fast").engine == ENGINE_FAST

    def test_invalid_engine_rejected(self, tiny_params, monkeypatch):
        with pytest.raises(ValueError, match="unknown simulation engine"):
            Machine(tiny_params, engine="warp")
        monkeypatch.setenv(ENV_VAR, "warp")
        with pytest.raises(ValueError, match="unknown simulation engine"):
            resolve_engine(None)

    def test_engine_excluded_from_cache_key(self):
        from repro.experiments.config import TINY
        from repro.experiments.engine import KIND_ALONE, PlannedRun

        payload = PlannedRun(kind=KIND_ALONE, sc=TINY, bench="410.bwaves").key_payload()
        assert "sim_engine" not in payload["machine"]
