"""CAT controller: CBM validation, associations, resctrl semantics."""

import pytest

from repro.sim.cat import CatController, full_mask, is_contiguous_mask, low_ways_mask


class TestMaskHelpers:
    def test_full_mask(self):
        assert full_mask(20) == 0xFFFFF
        assert full_mask(4) == 0xF

    def test_low_ways_mask(self):
        assert low_ways_mask(3, 20) == 0b111

    def test_low_ways_mask_clamps(self):
        assert low_ways_mask(0, 4) == 0b1     # at least one way
        assert low_ways_mask(99, 4) == 0xF    # at most all ways

    @pytest.mark.parametrize("mask", [0b1, 0b11, 0b1110, 0b11000, full_mask(20)])
    def test_contiguous_accepted(self, mask):
        assert is_contiguous_mask(mask)

    @pytest.mark.parametrize("mask", [0, 0b101, 0b1001, 0b110011, -4])
    def test_non_contiguous_rejected(self, mask):
        assert not is_contiguous_mask(mask)


class TestCatController:
    def test_default_full_mask_all_cores_clos0(self):
        cat = CatController(20, 8)
        for core in range(8):
            assert cat.core_clos(core) == 0
            assert cat.allowed_ways(core) == tuple(range(20))

    def test_set_cbm_and_assign(self):
        cat = CatController(20, 8)
        cat.set_cbm(1, 0b111)
        cat.assign_core(3, 1)
        assert cat.allowed_ways(3) == (0, 1, 2)
        assert cat.allowed_ways(0) == tuple(range(20))

    def test_rejects_non_contiguous_cbm(self):
        cat = CatController(20, 8)
        with pytest.raises(ValueError, match="contiguous"):
            cat.set_cbm(1, 0b101)

    def test_rejects_oversized_cbm(self):
        cat = CatController(4, 2)
        with pytest.raises(ValueError, match="exceeds"):
            cat.set_cbm(1, 0x1F)

    def test_min_cbm_bits_enforced(self):
        cat = CatController(20, 8, min_cbm_bits=2)
        with pytest.raises(ValueError, match="fewer"):
            cat.set_cbm(1, 0b1)
        cat.set_cbm(1, 0b11)  # ok

    def test_clos_bounds(self):
        cat = CatController(4, 2, n_clos=2)
        with pytest.raises(IndexError):
            cat.set_cbm(2, 0b11)
        with pytest.raises(IndexError):
            cat.assign_core(0, 5)

    def test_core_bounds(self):
        cat = CatController(4, 2)
        with pytest.raises(IndexError):
            cat.assign_core(2, 0)

    def test_allowed_ways_cache_invalidated_on_cbm_change(self):
        cat = CatController(8, 1)
        cat.assign_core(0, 1)
        cat.set_cbm(1, 0b11)
        assert cat.allowed_ways(0) == (0, 1)
        cat.set_cbm(1, 0b1100)
        assert cat.allowed_ways(0) == (2, 3)

    def test_reset_restores_defaults(self):
        cat = CatController(8, 2)
        cat.set_cbm(1, 0b11)
        cat.assign_core(0, 1)
        cat.reset()
        assert cat.core_clos(0) == 0
        assert cat.get_cbm(1) == full_mask(8)
        assert cat.allowed_ways(0) == tuple(range(8))

    def test_schemata_lists_used_clos(self):
        cat = CatController(8, 3)
        cat.set_cbm(2, 0b111)
        cat.assign_core(1, 2)
        sch = cat.schemata()
        assert sch == {0: full_mask(8), 2: 0b111}

    def test_overlapping_masks_allowed(self):
        cat = CatController(8, 2)
        cat.set_cbm(1, 0b0011)
        cat.set_cbm(2, 0b0111)  # overlaps CLOS 1 — CAT permits this
        cat.assign_core(0, 1)
        cat.assign_core(1, 2)
        assert set(cat.allowed_ways(0)) <= set(cat.allowed_ways(1))
