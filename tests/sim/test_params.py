"""MachineParams / CacheGeometry validation and scaling."""

import pytest

from repro.sim.params import CacheGeometry, MachineParams, default_params, scaled_params


class TestCacheGeometry:
    def test_e5_llc_geometry(self):
        g = CacheGeometry(20 * 1024 * 1024, 20)
        assert g.sets == 16384
        assert g.lines == 327680

    def test_sets_and_lines(self):
        g = CacheGeometry(32 * 1024, 8)
        assert g.sets == 64
        assert g.lines == 512

    def test_rejects_indivisible_size(self):
        with pytest.raises(ValueError, match="not divisible"):
            CacheGeometry(1000, 3)

    def test_rejects_non_power_of_two_sets(self):
        # 3 sets x 4 ways x 64B
        with pytest.raises(ValueError, match="power of two"):
            CacheGeometry(3 * 4 * 64, 4)


class TestMachineParams:
    def test_defaults_match_paper_processor(self):
        p = default_params()
        assert p.n_cores == 8
        assert p.freq_ghz == 2.1
        assert p.l1.size_bytes == 32 * 1024
        assert p.l2.size_bytes == 256 * 1024
        assert p.llc.size_bytes == 20 * 1024 * 1024
        assert p.llc.ways == 20

    def test_cycles_per_second(self):
        assert default_params().cycles_per_second == pytest.approx(2.1e9)

    def test_scaled_shrinks_llc_by_factor(self):
        p = default_params().scaled(8)
        assert p.llc.size_bytes == 20 * 1024 * 1024 // 8
        assert p.llc.ways == 20  # associativity preserved

    def test_scaled_private_caches_capped_at_4x(self):
        p = default_params().scaled(16)
        assert p.l1.size_bytes == 32 * 1024 // 4
        assert p.l2.size_bytes == 256 * 1024 // 4

    def test_scaled_params_core_count(self):
        p = scaled_params(8, n_cores=4)
        assert p.n_cores == 4

    def test_scaled_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            default_params().scaled(0)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            MachineParams(n_cores=0)

    def test_rejects_mismatched_line_size(self):
        with pytest.raises(ValueError, match="line size"):
            MachineParams(l1=CacheGeometry(32 * 1024, 8, line_bytes=32))
