"""Per-quantum timing solver."""

import pytest

from repro.sim.core_model import QuantumCounts, solve_quantum
from repro.sim.memory import DramModel
from repro.sim.params import MachineParams


@pytest.fixture
def params():
    return MachineParams()


def solve(params, counts, ipm=None, mlp=None, active=None):
    n = len(counts)
    return solve_quantum(
        params,
        DramModel(params),
        counts,
        ipm or [4.0] * n,
        mlp or [4.0] * n,
        active if active is not None else [True] * n,
    )


class TestSolveQuantum:
    def test_pure_exec_cycles(self, params):
        c = QuantumCounts(n_access=1000)
        t = solve(params, [c], ipm=[4.0])
        expected = 1000 * 5 * params.cpi_exec
        assert t.cycles[0] == pytest.approx(expected)
        assert t.stalls_l2_pending[0] == pytest.approx(0.0)

    def test_l2_hits_add_stall(self, params):
        base = solve(params, [QuantumCounts(n_access=1000)]).cycles[0]
        t = solve(params, [QuantumCounts(n_access=1000, n_l2_hit_d=100)])
        assert t.cycles[0] == pytest.approx(base + 100 * params.lat_l2 / 4.0)

    def test_llc_hits_counted_in_l2_pending_stalls(self, params):
        t = solve(params, [QuantumCounts(n_access=1000, n_llc_hit_d=50)])
        assert t.stalls_l2_pending[0] == pytest.approx(50 * params.lat_llc / 4.0)

    def test_memory_latency_scales_with_queue_factor(self, params):
        light = QuantumCounts(n_access=1000, n_mem_d=100, demand_bytes=100 * 64.0)
        t_light = solve(params, [light])
        heavy = QuantumCounts(n_access=1000, n_mem_d=800, demand_bytes=800 * 64.0)
        t_heavy = solve(params, [heavy])
        assert t_heavy.queue_factor[0] > t_light.queue_factor[0]

    def test_higher_mlp_fewer_stall_cycles(self, params):
        c = QuantumCounts(n_access=1000, n_mem_d=200, demand_bytes=200 * 64.0)
        t_low = solve(params, [c], mlp=[1.0])
        t_high = solve(params, [c], mlp=[8.0])
        assert t_high.cycles[0] < t_low.cycles[0]

    def test_prefetch_bytes_raise_queue_factor_without_direct_stall(self, params):
        no_pf = QuantumCounts(n_access=1000, n_mem_d=100, demand_bytes=6400.0)
        with_pf = QuantumCounts(
            n_access=1000, n_mem_d=100, demand_bytes=6400.0, pref_bytes=80_000.0
        )
        t0 = solve(params, [no_pf])
        t1 = solve(params, [with_pf])
        assert t1.queue_factor[0] > t0.queue_factor[0]
        assert t1.cycles[0] > t0.cycles[0]

    def test_shared_bandwidth_couples_cores(self, params):
        quiet = QuantumCounts(n_access=1000, n_mem_d=50, demand_bytes=50 * 64.0)
        noisy = QuantumCounts(n_access=1000, n_mem_d=50, demand_bytes=50 * 64.0,
                              pref_bytes=500_000.0)
        t_alone = solve(params, [quiet, QuantumCounts()], active=[True, False])
        t_corun = solve(params, [quiet, noisy])
        assert t_corun.cycles[0] > t_alone.cycles[0]

    def test_idle_core_minimal_cycles(self, params):
        t = solve(params, [QuantumCounts(), QuantumCounts(n_access=100)], active=[False, True])
        assert t.cycles[0] == pytest.approx(1.0)

    def test_machine_cycles_mean_of_active(self, params):
        counts = [QuantumCounts(n_access=1000), QuantumCounts(n_access=2000)]
        t = solve(params, counts)
        assert t.machine_cycles == pytest.approx(float(t.cycles.mean()))

    def test_alignment_check(self, params):
        with pytest.raises(ValueError):
            solve_quantum(params, DramModel(params), [QuantumCounts()], [1.0], [1.0, 2.0], [True])

    def test_total_bytes_property(self):
        c = QuantumCounts(demand_bytes=10.0, pref_bytes=5.0)
        assert c.total_bytes == 15.0
