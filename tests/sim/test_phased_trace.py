"""PhasedTrace: program-phase behaviour."""

import numpy as np
import pytest

from repro.sim.trace import PhasedTrace, SequentialStream, TraceGenerator


def gen(base: int, ipm: float, mlp: float = 4.0) -> TraceGenerator:
    return TraceGenerator(
        [SequentialStream(1, base, 64)], [1.0], inst_per_mem=ipm, mlp=mlp, seed=0
    )


class TestPhasedTrace:
    def test_alternates_address_regions(self):
        t = PhasedTrace([gen(0, 1.0), gen(1 << 20, 1.0)], phase_len=10)
        _, lines = t.chunk(20)
        assert (lines[:10] < 1 << 20).all()
        assert (lines[10:] >= 1 << 20).all()

    def test_chunk_spanning_phases(self):
        t = PhasedTrace([gen(0, 1.0), gen(1 << 20, 1.0)], phase_len=7)
        _, lines = t.chunk(10)
        assert (lines[:7] < 1 << 20).all()
        assert (lines[7:] >= 1 << 20).all()

    def test_wraps_around_phases(self):
        t = PhasedTrace([gen(0, 1.0), gen(1 << 20, 1.0)], phase_len=5)
        t.chunk(10)
        assert t.current_phase == 0  # back to the first phase
        _, lines = t.chunk(5)
        assert (lines < 1 << 20).all()

    def test_properties_follow_phase(self):
        t = PhasedTrace([gen(0, 2.0, 8.0), gen(1 << 20, 10.0, 1.5)], phase_len=4)
        assert t.inst_per_mem == 2.0
        assert t.mlp == 8.0
        t.chunk(4)
        assert t.inst_per_mem == 10.0
        assert t.mlp == 1.5

    def test_footprint_is_max(self):
        a = TraceGenerator([SequentialStream(1, 0, 100)], [1.0])
        b = TraceGenerator([SequentialStream(1, 0, 300)], [1.0])
        assert PhasedTrace([a, b], 10).footprint_lines() == 300

    def test_validation(self):
        with pytest.raises(ValueError):
            PhasedTrace([], 10)
        with pytest.raises(ValueError):
            PhasedTrace([gen(0, 1.0)], 0)

    def test_single_phase_equals_generator(self):
        a = gen(0, 1.0)
        b = gen(0, 1.0)
        t = PhasedTrace([a], 16)
        _, la = t.chunk(50)
        _, lb = b.chunk(50)
        np.testing.assert_array_equal(la, lb)

    def test_runs_on_machine(self, tiny_machine):
        from repro.sim.pmu import Event

        t = PhasedTrace([gen(0, 2.0), gen(1 << 20, 12.0)], phase_len=256)
        tiny_machine.attach_trace(0, t)
        tiny_machine.run_accesses(1024)
        assert tiny_machine.pmu.read(0, Event.INSTRUCTIONS) > 0
