"""Machine integration: pipeline wiring, PMU accounting, control surfaces."""

import numpy as np
import pytest

from repro.sim.cat import low_ways_mask
from repro.sim.machine import Machine
from repro.sim.params import CacheGeometry, MachineParams
from repro.sim.pmu import Event
from tests.conftest import make_random_trace, make_seq_trace


class TestSetup:
    def test_idle_machine_runs_nothing(self, tiny_machine):
        tiny_machine.run_accesses(1000)
        assert tiny_machine.pmu.counts.sum() == 0

    def test_attach_and_idle(self, tiny_machine):
        tiny_machine.attach_trace(0, make_seq_trace())
        assert tiny_machine.active_cores() == [0]
        tiny_machine.set_idle(0)
        assert tiny_machine.active_cores() == []

    def test_core_base_lines_disjoint(self, tiny_machine):
        assert tiny_machine.core_base_line(1) - tiny_machine.core_base_line(0) >= 1 << 30

    def test_rejects_bad_quantum(self, tiny_params):
        with pytest.raises(ValueError):
            Machine(tiny_params, quantum=0)


class TestPmuAccounting:
    def test_instruction_count_matches_trace(self, tiny_machine):
        tiny_machine.attach_trace(0, make_seq_trace(ipm=4.0))
        tiny_machine.run_accesses(1000)
        inst = tiny_machine.pmu.read(0, Event.INSTRUCTIONS)
        assert inst == pytest.approx(1000 * 5.0)

    def test_l1_requests_counted(self, tiny_machine):
        tiny_machine.attach_trace(0, make_seq_trace())
        tiny_machine.run_accesses(500)
        assert tiny_machine.pmu.read(0, Event.L1_DM_REQ) == 500

    def test_miss_hierarchy_conservation(self, tiny_machine):
        """L2 demand requests = L1 demand misses; L2 misses <= L2 requests."""
        tiny_machine.attach_trace(0, make_random_trace())
        tiny_machine.run_accesses(2000)
        pmu = tiny_machine.pmu
        assert pmu.read(0, Event.L2_DM_REQ) == pmu.read(0, Event.L1_DM_MISS)
        assert pmu.read(0, Event.L2_DM_MISS) <= pmu.read(0, Event.L2_DM_REQ)
        assert pmu.read(0, Event.L2_PREF_MISS) <= pmu.read(0, Event.L2_PREF_REQ)

    def test_demand_bytes_match_l3_misses(self, tiny_machine):
        tiny_machine.attach_trace(0, make_random_trace())
        tiny_machine.run_accesses(2000)
        pmu = tiny_machine.pmu
        assert pmu.read(0, Event.MEM_DEMAND_BYTES) == pytest.approx(
            pmu.read(0, Event.L3_LOAD_MISS) * 64
        )

    def test_dram_accounting_matches_pmu(self, tiny_machine):
        tiny_machine.attach_trace(0, make_random_trace())
        tiny_machine.run_accesses(1000)
        pmu = tiny_machine.pmu
        assert tiny_machine.dram.total_demand_bytes == pytest.approx(
            pmu.read(0, Event.MEM_DEMAND_BYTES)
        )
        assert tiny_machine.dram.total_pref_bytes == pytest.approx(
            pmu.read(0, Event.MEM_PREF_BYTES)
        )

    def test_wall_cycles_advance(self, tiny_machine):
        tiny_machine.attach_trace(0, make_seq_trace())
        tiny_machine.run_accesses(100)
        assert tiny_machine.pmu.wall_cycles > 0


class TestPrefetchControl:
    def test_msr_off_stops_prefetch_requests(self, tiny_machine):
        tiny_machine.attach_trace(0, make_seq_trace())
        tiny_machine.prefetch_msr.set_all_off(0)
        tiny_machine.run_accesses(1000)
        pmu = tiny_machine.pmu
        assert pmu.read(0, Event.L2_PREF_REQ) == 0
        assert pmu.read(0, Event.L1_PREF_REQ) == 0
        assert pmu.read(0, Event.MEM_PREF_BYTES) == 0

    def test_prefetching_improves_stream_ipc(self, tiny_params):
        def run(mask):
            m = Machine(tiny_params, quantum=256)
            m.attach_trace(0, make_seq_trace(region=8192))
            m.prefetch_msr.set_mask(0, mask)
            m.run_accesses(4000)
            s = m.pmu
            return s.read(0, Event.INSTRUCTIONS) / s.read(0, Event.CYCLES)

        assert run(0x0) > 1.25 * run(0xF)

    def test_mask_change_mid_run_takes_effect(self, tiny_machine):
        tiny_machine.attach_trace(0, make_seq_trace())
        tiny_machine.run_accesses(500)
        before = tiny_machine.pmu.read(0, Event.L2_PREF_REQ)
        assert before > 0
        tiny_machine.prefetch_msr.set_all_off(0)
        tiny_machine.run_accesses(500)
        assert tiny_machine.pmu.read(0, Event.L2_PREF_REQ) == before


class TestPartitioningEffect:
    def test_way_restriction_hurts_resident_working_set(self):
        params = MachineParams(
            n_cores=1,
            l1=CacheGeometry(4 * 64 * 2, 2),
            l2=CacheGeometry(8 * 64 * 2, 2),
            llc=CacheGeometry(64 * 64 * 8, 8),
        )

        def run(ways):
            m = Machine(params, quantum=256)
            from repro.sim.trace import PointerChaseStream, TraceGenerator
            rng = np.random.default_rng(5)
            region = int(params.llc.lines * 0.8)
            tr = TraceGenerator(
                [PointerChaseStream(1, 0, region, rng, repeats=2)], [1.0],
                inst_per_mem=4.0, mlp=2.0, seed=1,
            )
            m.attach_trace(0, tr)
            if ways is not None:
                m.cat.set_cbm(1, low_ways_mask(ways, 8))
                m.cat.assign_core(0, 1)
            m.run_accesses(region * 2 * 3)
            s = m.pmu
            return s.read(0, Event.INSTRUCTIONS) / s.read(0, Event.CYCLES)

        assert run(None) > 1.2 * run(2)

    def test_partition_protects_victim(self, tiny_params):
        """Confining a thrashing core restores the victim's hit rate."""
        def run(partition):
            m = Machine(tiny_params, quantum=256)
            from repro.sim.trace import PointerChaseStream, TraceGenerator
            rng = np.random.default_rng(3)
            region = int(tiny_params.llc.lines * 0.5)
            victim = TraceGenerator(
                [PointerChaseStream(1, 0, region, rng, repeats=2)], [1.0],
                inst_per_mem=4.0, mlp=2.0, seed=1,
            )
            m.attach_trace(0, victim)
            m.attach_trace(1, make_random_trace(m.core_base_line(1), region=100_000))
            if partition:
                m.cat.set_cbm(1, low_ways_mask(2, tiny_params.llc.ways))
                m.cat.assign_core(1, 1)
            m.run_accesses(region * 2 * 4)
            return m.pmu.read(0, Event.L3_LOAD_MISS)

        assert run(partition=True) < run(partition=False)


class TestDeterminism:
    def test_same_seed_same_counts(self, tiny_params):
        def run():
            m = Machine(tiny_params, quantum=256)
            m.attach_trace(0, make_seq_trace(seed=9))
            m.attach_trace(1, make_random_trace(m.core_base_line(1), seed=9))
            m.run_accesses(1500)
            return m.pmu.counts.copy()

        np.testing.assert_array_equal(run(), run())
