"""Differential tests: the ``batch`` engine is bit-identical to ``fast``.

The batch kernel shares one zero-copy materialized trace across N runs
of a mix, deduplicates core phases in lane trees, and serves static
mask/CAT sweeps through a lockstep grouped LLC.  None of that sharing
may be observable: PMU totals, wall cycles, LLC stats and occupancy
must match the scalar fast engine bit for bit across mixes, prefetcher
mask sets, shared vs. CAT-partitioned LLCs, batch widths (including a
width of one and ragged sub-groups), and mid-run control flips.  This
is what lets cache keys and sessions treat the engine as invisible.

Also home to the unit tests for the :mod:`repro.sim.engines` registry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import numpy as np
import pytest

from repro.experiments.batch import BatchRunSpec, build_batch_kernel, simulate_batch
from repro.experiments.batch import _run_mechanism as run_mechanism_on
from repro.experiments.config import ScaleConfig
from repro.experiments.engine import KIND_MECHANISM, ExperimentSession, PlannedRun
from repro.experiments.runner import build_machine
from repro.sim import PF_ALL_OFF, PF_ALL_ON
from repro.sim.batch import run_static_sweep
from repro.sim import nativekernels
from repro.sim.engines import (
    ENGINE_AUTO,
    ENGINE_BATCH,
    ENGINE_FAST,
    ENGINE_NATIVE,
    ENGINE_REFERENCE,
    ENV_VAR,
    EngineSelectionError,
    EngineSpec,
    available_engines,
    get_engine,
    register_engine,
    resolve_engine,
)
from repro.sim.tracestore import TraceStore
from repro.workloads.mixes import make_mixes

SC = ScaleConfig(name="batch-unit", llc_scale=16, n_cores=4, quantum=512)
N_ACCESSES = 6000

CATEGORIES = ("pref_agg", "pref_unfri", "pref_no_agg")

MASKS = {
    "pf_on": (PF_ALL_ON,) * 4,
    "pf_off": (PF_ALL_OFF,) * 4,
    "pf_mixed": (0x5, 0xA, 0x3, 0xC),
}


@pytest.fixture(scope="module")
def store():
    return TraceStore(None, mode="memory")


def _mix(category):
    return make_mixes(category, 1, n_cores=4, seed=2019)[0]


def _cat_split(k, w, n_cores):
    """CLOS 0 gets the low ``k`` ways, CLOS 1 the rest; cores alternate."""
    cbm0 = (1 << k) - 1
    cbm1 = ((1 << w) - 1) ^ cbm0
    return ((0, cbm0), (1, cbm1)), tuple(c % 2 for c in range(n_cores))


def _specs(mix, masks, partitioned, width):
    w = SC.params().llc.ways
    out = []
    for i in range(width):
        clos_cbms, core_clos = (), ()
        if partitioned:
            # distinct split per run: the lockstep LLC carries per-run CAT
            clos_cbms, core_clos = _cat_split(2 + i, w, mix.n_cores)
        out.append(
            BatchRunSpec(
                mix=mix,
                n_accesses=N_ACCESSES,
                masks=masks,
                clos_cbms=clos_cbms,
                core_clos=core_clos,
            )
        )
    return out


def _scalar_stats(spec, store, sc=SC):
    """Run one spec on its own scalar fast machine (the reference)."""
    m = build_machine(spec.mix, sc, trace_store=store)
    for cpu, mask in enumerate(spec.masks):
        m.prefetch_msr.set_mask(cpu, mask)
    for clos, cbm in spec.clos_cbms:
        m.cat.set_cbm(clos, cbm)
    for cpu, clos in enumerate(spec.core_clos):
        m.cat.assign_core(cpu, clos)
    snap = m.pmu.snapshot()
    m.run_accesses(spec.n_accesses)
    s = m.pmu.delta_since(snap)
    llc = m.llc.stats
    return {
        "totals": s.deltas,
        "wall": s.wall_cycles,
        "llc": (llc.accesses, llc.hits, llc.pref_fills, llc.pref_used, llc.pref_evicted_unused),
        "occ": m.llc.occupancy(),
    }


def _digest(stats_list):
    """One sha256 over every run's totals and wall cycles, in order."""
    h = hashlib.sha256()
    for rs in stats_list:
        h.update(np.ascontiguousarray(rs.totals).tobytes())
        h.update(repr(rs.wall_cycles).encode())
    return h.hexdigest()


class TestBatchBitIdentity:
    @pytest.mark.parametrize("category", CATEGORIES)
    @pytest.mark.parametrize("mask_name", sorted(MASKS))
    @pytest.mark.parametrize("partitioned", [False, True], ids=["shared", "cat"])
    def test_width3_matches_scalar(self, store, category, mask_name, partitioned):
        mix = _mix(category)
        specs = _specs(mix, MASKS[mask_name], partitioned, width=3)
        batch = simulate_batch(specs, SC, trace_store=store)
        label = f"{category}/{mask_name}/{'cat' if partitioned else 'shared'}"
        for i, (rs, spec) in enumerate(zip(batch, specs)):
            ref = _scalar_stats(spec, store)
            assert np.array_equal(rs.totals, ref["totals"]), f"{label}[{i}]: totals diverged"
            assert rs.wall_cycles == ref["wall"], f"{label}[{i}]: wall cycles diverged"


class TestBatchWidths:
    @pytest.mark.parametrize("width", [1, 3, 8])
    def test_sha256_identity(self, store, width):
        """The full-result digest is the same whether runs share a kernel
        (width > 1, lockstep sweep) or run alone (width 1, scalar path)."""
        mix = _mix("pref_agg")
        specs = _specs(mix, MASKS["pf_mixed"], True, width=width)
        batch = simulate_batch(specs, SC, trace_store=store)
        scalar = [_scalar_stats(s, store) for s in specs]
        h = hashlib.sha256()
        for ref in scalar:
            h.update(np.ascontiguousarray(ref["totals"]).tobytes())
            h.update(repr(ref["wall"]).encode())
        assert _digest(batch) == h.hexdigest()

    def test_ragged_subgroups(self, store):
        """Specs with different mask vectors split into lockstep sub-groups
        of uneven width (3 + 2) plus a singleton on the per-run path —
        all bit-identical, order preserved."""
        mix = _mix("pref_unfri")
        specs = (
            _specs(mix, MASKS["pf_on"], True, width=3)
            + _specs(mix, MASKS["pf_off"], True, width=2)
            + _specs(mix, MASKS["pf_mixed"], False, width=1)
        )
        batch = simulate_batch(specs, SC, trace_store=store)
        assert len(batch) == 6
        for i, (rs, spec) in enumerate(zip(batch, specs)):
            ref = _scalar_stats(spec, store)
            assert np.array_equal(rs.totals, ref["totals"]), f"spec[{i}] diverged"
            assert rs.wall_cycles == ref["wall"], f"spec[{i}] wall diverged"


class TestLockstepSweep:
    def test_llc_state_matches_scalar(self, store):
        """run_static_sweep exposes per-run LLC stats and occupancy that
        match each run's own scalar machine exactly."""
        mix = _mix("pref_agg")
        w = SC.params().llc.ways
        configs = [_cat_split(2 + i, w, mix.n_cores) for i in range(5)]
        masks = MASKS["pf_mixed"]
        kernel = build_batch_kernel(mix, SC, store, length=N_ACCESSES)
        rows = run_static_sweep(kernel, configs, masks, N_ACCESSES)
        assert len(rows) == 5
        for i, (clos_cbms, core_clos) in enumerate(configs):
            spec = BatchRunSpec(
                mix=mix, n_accesses=N_ACCESSES, masks=masks,
                clos_cbms=clos_cbms, core_clos=core_clos,
            )
            ref = _scalar_stats(spec, store)
            assert np.array_equal(rows[i].pmu_counts, ref["totals"]), f"run {i}: pmu"
            assert rows[i].wall_cycles == ref["wall"], f"run {i}: wall"
            assert rows[i].llc_stats == ref["llc"], f"run {i}: llc stats"
            assert np.array_equal(rows[i].llc_occupancy, ref["occ"]), f"run {i}: occupancy"


class TestMidRunControlFlips:
    def test_lane_machine_tracks_flips(self, store):
        """A LaneMachine from the kernel picks up mask and CAT flips
        between quanta exactly like a scalar fast machine."""
        mix = _mix("pref_agg")
        kernel = build_batch_kernel(mix, SC, store, length=N_ACCESSES)
        machines = [kernel.machine(), build_machine(mix, SC, trace_store=store)]
        for m in machines:
            m.run_accesses(3000)
            m.prefetch_msr.set_mask(0, PF_ALL_OFF)
            m.prefetch_msr.set_mask(2, 0x9)
            w = m.params.llc.ways
            m.cat.set_cbm(0, (1 << (w // 4)) - 1)
            for cpu in range(mix.n_cores):
                m.cat.assign_core(cpu, 0)
            m.run_accesses(3000)
        a, b = machines
        assert np.array_equal(a.pmu.counts, b.pmu.counts)
        assert a.pmu.wall_cycles == b.pmu.wall_cycles

    def test_mechanism_specs_match_scalar(self, store):
        """Controller-driven runs flip masks/CAT every epoch; batched
        execution must reproduce them exactly."""
        sc = dataclasses.replace(SC, sample_units=512, exec_units=2048, n_epochs=1)
        mix = _mix("pref_unfri")
        specs = [
            BatchRunSpec(mix=mix, mechanism="pt"),
            BatchRunSpec(mix=mix, mechanism="cmm-a"),
        ]
        batch = simulate_batch(specs, sc, trace_store=store)
        for rs, spec in zip(batch, specs):
            ref = run_mechanism_on(build_machine(mix, sc, trace_store=store), spec.mechanism, sc)
            assert np.array_equal(rs.totals, ref.totals), spec.mechanism
            assert rs.wall_cycles == ref.wall_cycles, spec.mechanism


MECH_SC = dataclasses.replace(SC, sample_units=512, exec_units=2048, n_epochs=1)

# (width, llc axis) -> mechanism list.  The llc axis tags whether the
# mechanisms drive CAT (cmm-*, pref-cp2 plan partitions), keep the LLC
# shared (pt, dunn, pref-cp only throttle prefetchers) or mix both.
DYNAMIC_CASES = {
    (1, "shared"): ("pt",),
    (1, "cat"): ("cmm-a",),
    (3, "shared"): ("pt", "pref-cp", "dunn"),
    (3, "cat"): ("cmm-a", "cmm-b", "pref-cp2"),
    (8, "mixed"): (
        "baseline", "pt", "dunn", "pref-cp", "pref-cp2", "cmm-a", "cmm-b", "cmm-c",
    ),
}


class TestDynamicLockstepDifferential:
    """Controller-driven (dynamic) runs batched in masked lockstep must be
    sha256-identical to per-run scalar fast execution across mixes,
    shared/CAT mechanisms and batch widths 1, 3 and 8."""

    @pytest.mark.parametrize("category", CATEGORIES)
    @pytest.mark.parametrize(
        "width,axis", sorted(DYNAMIC_CASES), ids=lambda v: str(v)
    )
    def test_mechanism_matrix_sha256(self, store, category, width, axis):
        mechs = DYNAMIC_CASES[(width, axis)]
        assert len(mechs) == width
        mix = _mix(category)
        specs = [BatchRunSpec(mix=mix, mechanism=m) for m in mechs]
        batch = simulate_batch(specs, MECH_SC, trace_store=store)
        scalar = [
            run_mechanism_on(build_machine(mix, MECH_SC, trace_store=store), m, MECH_SC)
            for m in mechs
        ]
        label = f"{category}/{width}/{axis}"
        assert _digest(batch) == _digest(scalar), f"{label}: digest diverged"


class TestSessionDispatch:
    MECHS = ("baseline", "pt")

    def _payloads(self, engine):
        sc = dataclasses.replace(SC, sample_units=512, exec_units=2048, n_epochs=1)
        mix = _mix("pref_agg")
        runs = [PlannedRun(KIND_MECHANISM, sc, mix=mix, mechanism=m) for m in self.MECHS]
        session = ExperimentSession(
            cache_dir=None, max_workers=1, trace_cache="memory", engine=engine
        )
        return session.execute(runs)

    def test_batched_session_payloads_identical(self):
        """The result cache cannot tell which engine produced an entry."""
        batched = self._payloads("auto")
        scalar = self._payloads("fast")
        assert batched.keys() == scalar.keys()
        for key in batched:
            a = json.dumps(batched[key], sort_keys=True)
            b = json.dumps(scalar[key], sort_keys=True)
            assert a == b, f"payload diverged for {key}"

    def test_env_var_is_the_off_switch(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fast")
        off = ExperimentSession(cache_dir=None, max_workers=1)
        assert not off._engine_spec().batched
        monkeypatch.delenv(ENV_VAR)
        auto = ExperimentSession(cache_dir=None, max_workers=1)
        assert auto._engine_spec().batched

    def test_unknown_engine_rejected_at_construction(self):
        with pytest.raises(EngineSelectionError, match="unknown simulation engine"):
            ExperimentSession(cache_dir=None, engine="warp")


class TestEngineRegistry:
    def test_builtins_registered(self):
        names = available_engines()
        for name in (ENGINE_REFERENCE, ENGINE_FAST, ENGINE_BATCH):
            assert name in names
        assert not get_engine(ENGINE_FAST).batched
        assert get_engine(ENGINE_BATCH).batched
        assert "multi-run" in get_engine(ENGINE_BATCH).capabilities

    def test_unknown_name_lists_engines(self):
        with pytest.raises(EngineSelectionError) as exc:
            get_engine("warp")
        msg = str(exc.value)
        for name in available_engines() + (ENGINE_AUTO,):
            assert name in msg

    def test_selection_error_is_a_value_error(self):
        assert issubclass(EngineSelectionError, ValueError)

    def test_duplicate_registration_needs_replace(self):
        spec = get_engine(ENGINE_FAST)
        with pytest.raises(EngineSelectionError, match="already registered"):
            register_engine(spec)
        assert register_engine(spec, replace=True) is spec

    def test_auto_name_reserved(self):
        with pytest.raises(EngineSelectionError, match="reserved"):
            register_engine(EngineSpec(name=ENGINE_AUTO))

    def test_spec_validation(self):
        with pytest.raises(EngineSelectionError, match="lowercase"):
            EngineSpec(name="Fast")
        with pytest.raises(EngineSelectionError, match="kernel"):
            EngineSpec(name="x", kernel="warp")
        with pytest.raises(EngineSelectionError, match="batch_width"):
            EngineSpec(name="x", batch_width=0)

    def test_resolve_auto_follows_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "reference")
        assert resolve_engine(None).name == ENGINE_REFERENCE
        assert resolve_engine("auto").name == ENGINE_REFERENCE
        monkeypatch.delenv(ENV_VAR)
        # With no env override, auto prefers the compiled tier when it
        # is usable and otherwise falls back to the default engine.
        expected = ENGINE_NATIVE if nativekernels.kernels_enabled() else ENGINE_FAST
        assert resolve_engine(None).name == expected
        assert resolve_engine("batch").name == ENGINE_BATCH
