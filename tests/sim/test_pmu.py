"""PMU counter fabric and sampling."""

import numpy as np
import pytest

from repro.sim.pmu import Event, N_EVENTS, Pmu, PmuSample


class TestPmu:
    def test_initial_zero(self):
        p = Pmu(2)
        assert p.read(0, Event.CYCLES) == 0.0

    def test_add_and_read(self):
        p = Pmu(2)
        p.add(1, Event.INSTRUCTIONS, 100)
        assert p.read(1, Event.INSTRUCTIONS) == 100
        assert p.read(0, Event.INSTRUCTIONS) == 0

    def test_snapshot_delta(self):
        p = Pmu(1)
        p.add(0, Event.CYCLES, 50)
        snap = p.snapshot()
        p.add(0, Event.CYCLES, 25)
        p.wall_cycles += 25
        d = p.delta_since(snap)
        assert d.get(0, Event.CYCLES) == 25
        assert d.wall_cycles == 25

    def test_snapshot_isolated_from_later_updates(self):
        p = Pmu(1)
        snap = p.snapshot()
        p.add(0, Event.CYCLES, 10)
        counts, _ = snap
        assert counts[0, Event.CYCLES] == 0

    def test_reset(self):
        p = Pmu(1)
        p.add(0, Event.CYCLES, 5)
        p.wall_cycles = 7
        p.reset()
        assert p.read(0, Event.CYCLES) == 0
        assert p.wall_cycles == 0

    def test_rejects_zero_cpus(self):
        with pytest.raises(ValueError):
            Pmu(0)


class TestPmuSample:
    def _sample(self):
        d = np.zeros((2, N_EVENTS))
        d[0, Event.INSTRUCTIONS] = 100
        d[0, Event.CYCLES] = 50
        d[1, Event.INSTRUCTIONS] = 30
        d[1, Event.CYCLES] = 60
        return PmuSample(d, wall_cycles=60)

    def test_ipc(self):
        s = self._sample()
        assert s.ipc(0) == pytest.approx(2.0)
        assert s.ipc(1) == pytest.approx(0.5)

    def test_ipc_zero_cycles(self):
        s = PmuSample(np.zeros((1, N_EVENTS)), 0.0)
        assert s.ipc(0) == 0.0

    def test_ipc_all(self):
        np.testing.assert_allclose(self._sample().ipc_all(), [2.0, 0.5])

    def test_total_and_per_cpu(self):
        s = self._sample()
        assert s.total(Event.INSTRUCTIONS) == 130
        np.testing.assert_allclose(s.per_cpu(Event.CYCLES), [50, 60])

    def test_add_samples(self):
        s = self._sample() + self._sample()
        assert s.total(Event.INSTRUCTIONS) == 260
        assert s.wall_cycles == 120

    def test_add_shape_mismatch(self):
        a = PmuSample(np.zeros((1, N_EVENTS)), 0.0)
        b = PmuSample(np.zeros((2, N_EVENTS)), 0.0)
        with pytest.raises(ValueError):
            a + b

    def test_event_enum_has_paper_events(self):
        names = {e.name for e in Event}
        for required in (
            "L2_PREF_REQ", "L2_PREF_MISS", "L2_DM_REQ", "L2_DM_MISS",
            "L3_LOAD_MISS", "STALLS_L2_PENDING",
        ):
            assert required in names
