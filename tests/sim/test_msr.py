"""MSR 0x1A4 emulation and bit layout."""

import pytest

from repro.sim.msr import (
    BIT_DCU_IP_STRIDE,
    BIT_DCU_NEXT_LINE,
    BIT_L2_ADJACENT,
    BIT_L2_STREAMER,
    MSR_MISC_FEATURE_CONTROL,
    MsrFile,
    PF_ALL_OFF,
    PF_ALL_ON,
    PrefetchMsr,
    enables_from_mask,
    mask_from_enables,
)


class TestBitLayout:
    def test_intel_documented_bits(self):
        assert BIT_L2_STREAMER == 0
        assert BIT_L2_ADJACENT == 1
        assert BIT_DCU_NEXT_LINE == 2
        assert BIT_DCU_IP_STRIDE == 3
        assert MSR_MISC_FEATURE_CONTROL == 0x1A4

    def test_all_on_off_constants(self):
        assert PF_ALL_ON == 0x0
        assert PF_ALL_OFF == 0xF

    def test_roundtrip(self):
        for mask in range(16):
            en = enables_from_mask(mask)
            assert mask_from_enables(**en) == mask

    def test_enables_from_all_on(self):
        en = enables_from_mask(PF_ALL_ON)
        assert all(en.values())

    def test_enables_from_all_off(self):
        en = enables_from_mask(PF_ALL_OFF)
        assert not any(en.values())

    def test_single_bit_disables_streamer_only(self):
        en = enables_from_mask(1 << BIT_L2_STREAMER)
        assert not en["streamer"]
        assert en["adjacent"] and en["next_line"] and en["stride"]

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            enables_from_mask(0x10)


class TestMsrFile:
    def test_default_zero(self):
        f = MsrFile(2)
        assert f.read(0, 0x1A4) == 0

    def test_write_read_per_cpu(self):
        f = MsrFile(2)
        f.write(0, 0x1A4, 0xF)
        assert f.read(0, 0x1A4) == 0xF
        assert f.read(1, 0x1A4) == 0  # other cpu untouched

    def test_cpu_bounds(self):
        f = MsrFile(1)
        with pytest.raises(IndexError):
            f.read(1, 0x1A4)
        with pytest.raises(IndexError):
            f.write(-1, 0x1A4, 0)

    def test_rejects_negative_value(self):
        with pytest.raises(ValueError):
            MsrFile(1).write(0, 0x1A4, -1)


class TestPrefetchMsr:
    def test_set_get_mask(self):
        p = PrefetchMsr(MsrFile(2))
        p.set_mask(1, 0x5)
        assert p.get_mask(1) == 0x5

    def test_all_on_off_helpers(self):
        p = PrefetchMsr(MsrFile(1))
        p.set_all_off(0)
        assert p.get_mask(0) == PF_ALL_OFF
        p.set_all_on(0)
        assert p.get_mask(0) == PF_ALL_ON

    def test_enables_view(self):
        p = PrefetchMsr(MsrFile(1))
        p.set_mask(0, 1 << BIT_DCU_IP_STRIDE)
        en = p.enables(0)
        assert not en["stride"]
        assert en["streamer"]

    def test_mask_range_checked(self):
        p = PrefetchMsr(MsrFile(1))
        with pytest.raises(ValueError):
            p.set_mask(0, 0x1F)
