"""DRAM queuing model."""

import numpy as np
import pytest

from repro.sim.memory import DramModel, RHO_CLIP
from repro.sim.params import MachineParams


@pytest.fixture
def dram():
    return DramModel(MachineParams())


class TestQueueFactor:
    def test_unloaded_is_one(self, dram):
        assert dram.queue_factor(0.0) == pytest.approx(1.0)

    def test_monotone_in_utilisation(self, dram):
        rhos = np.linspace(0.0, 1.2, 30)
        qf = np.asarray(dram.queue_factor(rhos))
        assert (np.diff(qf) >= -1e-12).all()

    def test_capped(self, dram):
        assert dram.queue_factor(0.999) <= dram.params.max_queue_factor
        assert dram.queue_factor(5.0) <= dram.params.max_queue_factor

    def test_clip_region(self, dram):
        assert dram.queue_factor(RHO_CLIP) == dram.queue_factor(2.0)


class TestEffectiveFactor:
    def test_idle_cores_low_factor(self, dram):
        cb = np.zeros(4)
        cyc = np.full(4, 1000.0)
        qf = dram.effective_factor(cb, cyc, 1000.0)
        np.testing.assert_allclose(qf, 1.0)

    def test_socket_pressure_raises_everyone(self, dram):
        # Total traffic near socket capacity inflates even a quiet core.
        cb = np.array([30_000.0, 0.0])
        cyc = np.full(2, 1000.0)
        qf = dram.effective_factor(cb, cyc, 1000.0)
        assert qf[1] > 1.5  # quiet core still queues at the controller

    def test_per_core_pressure_local(self, dram):
        # One core saturating its own fill bandwidth, socket mostly idle.
        cb = np.array([3_900.0, 0.0])
        cyc = np.full(2, 1000.0)
        qf = dram.effective_factor(cb, cyc, 1000.0)
        assert qf[0] > qf[1]
        assert qf[1] == pytest.approx(
            float(np.asarray(dram.queue_factor(3_900.0 / (dram.params.mem_bytes_per_cycle * 1000.0))))
        )

    def test_accounting(self, dram):
        dram.account(100.0, 50.0)
        dram.account(10.0, 5.0)
        assert dram.total_demand_bytes == 110.0
        assert dram.total_pref_bytes == 55.0
        assert dram.total_bytes == 165.0
