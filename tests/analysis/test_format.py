"""The shared presentation formatter (one float format everywhere)."""

from repro.analysis.format import fmt_value, render_ascii_table, render_markdown_table


class TestFmtValue:
    def test_floats_three_decimals(self):
        assert fmt_value(1.23456) == "1.235"
        assert fmt_value(2.0) == "2.000"

    def test_decimals_override(self):
        assert fmt_value(1.23456, decimals=1) == "1.2"

    def test_non_floats_pass_through(self):
        assert fmt_value(7) == "7"
        assert fmt_value("x") == "x"
        assert fmt_value(None) == "None"

    def test_sequences_render_compactly(self):
        assert fmt_value([1.0, 2.5]) == "[1.000,2.500]"
        assert fmt_value((3, "a")) == "[3,a]"

    def test_long_sequences_elide(self):
        s = fmt_value(list(range(100)), max_len=40)
        assert s == "[" + ",".join(str(i) for i in range(100))[:36] + "...]"
        assert s.endswith("...]")

    def test_short_sequences_not_elided(self):
        assert fmt_value([1], max_len=40) == "[1]"


class TestAsciiTable:
    def test_alignment_and_separator(self):
        out = render_ascii_table(["name", "v"], [["a", 1.5], ["bbbb", 2.0]])
        lines = out.splitlines()
        assert lines[0] == "name  v    "
        assert lines[1] == "----  -----"
        assert lines[2] == "a     1.500"
        assert lines[3] == "bbbb  2.000"

    def test_title_is_first_line(self):
        out = render_ascii_table(["h"], [[1]], title="T")
        assert out.splitlines()[0] == "T"


class TestMarkdownTable:
    def test_github_layout(self):
        out = render_markdown_table(["a", "b"], [[1.0, "x"]])
        assert out.splitlines() == ["| a | b |", "|---|---|", "| 1.000 | x |"]


class TestReportDelegation:
    """report.py renders through this module (satellite: dedup formats)."""

    def test_render_table_is_the_shared_renderer(self):
        from repro.experiments.report import render_table

        assert render_table(["h"], [[1.5]], title="t") == render_ascii_table(
            ["h"], [[1.5]], title="t"
        )

    def test_fmt_value_elision_boundary_matches_legacy(self):
        # The old report._fmt_value did s[:37] + "...]" past 40 chars.
        from repro.experiments.report import _fmt_value

        long = list(range(50))
        s = _fmt_value(long)
        assert s == fmt_value(long, max_len=40)
        assert s[:37] + "...]" == s  # the legacy cut point
