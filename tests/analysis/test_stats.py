"""Seeded statistics: bit-determinism, exact small-n behavior, fairness."""

import numpy as np
import pytest

from repro.analysis.stats import (
    bootstrap_ci,
    fair_slowdown,
    hm_ipc,
    paired_permutation_test,
    sign_test,
    slowdowns,
    unfairness,
)

VALUES = [1.02, 0.98, 1.10, 1.05, 0.95, 1.01, 1.08, 0.97]


class TestBootstrap:
    def test_same_seed_is_bit_identical(self):
        a = bootstrap_ci(VALUES, seed=7)
        b = bootstrap_ci(VALUES, seed=7)
        assert (a.lo, a.hi, a.stat) == (b.lo, b.hi, b.stat)

    def test_different_seed_differs(self):
        assert bootstrap_ci(VALUES, seed=7).lo != bootstrap_ci(VALUES, seed=8).lo

    def test_interval_brackets_the_mean(self):
        ci = bootstrap_ci(VALUES, seed=0)
        assert ci.lo <= ci.stat <= ci.hi
        assert ci.stat == pytest.approx(np.mean(VALUES))
        assert ci.n == len(VALUES)

    def test_single_observation_collapses(self):
        ci = bootstrap_ci([1.5], seed=0)
        assert ci.lo == ci.hi == ci.stat == 1.5
        assert ci.half_width == 0.0

    def test_custom_statistic(self):
        ci = bootstrap_ci(VALUES, seed=0, statistic=np.median)
        assert ci.stat == pytest.approx(np.median(VALUES))

    @pytest.mark.parametrize("bad", [[], [[1.0, 2.0]]])
    def test_bad_values_rejected(self, bad):
        with pytest.raises(ValueError):
            bootstrap_ci(bad)

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci(VALUES, confidence=1.0)


class TestPermutationTest:
    def test_same_seed_is_bit_identical(self):
        a = [v + 0.05 for v in VALUES]
        p1 = paired_permutation_test(a, VALUES, seed=3).p_value
        p2 = paired_permutation_test(a, VALUES, seed=3).p_value
        assert p1 == p2

    def test_clear_difference_is_significant(self):
        a = [v + 0.5 for v in VALUES]
        t = paired_permutation_test(a, VALUES, seed=0, n_resamples=999)
        assert t.mean_diff == pytest.approx(0.5)
        # Continuity correction: p can never be 0.
        assert 0.0 < t.p_value < 0.05

    def test_identical_samples_are_not_significant(self):
        t = paired_permutation_test(VALUES, VALUES, seed=0)
        assert t.mean_diff == 0.0 and t.p_value == 1.0

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError):
            paired_permutation_test([1.0], [1.0, 2.0])


class TestSignTest:
    def test_exact_small_n(self):
        # 4 wins, 0 losses: p = 2 * C(4,0) / 2^4 = 0.125 exactly.
        t = sign_test([2.0, 2.0, 2.0, 2.0], [1.0, 1.0, 1.0, 1.0])
        assert t.p_value == 0.125 and t.n == 4

    def test_all_ties_is_p_one(self):
        t = sign_test(VALUES, VALUES)
        assert t.p_value == 1.0 and t.n == 0

    def test_balanced_wins_not_significant(self):
        t = sign_test([1.0, 2.0], [2.0, 1.0])
        assert t.p_value == 1.0


class TestFairness:
    def test_hm_ipc_is_harmonic(self):
        assert hm_ipc([1.0, 1.0]) == pytest.approx(1.0)
        assert hm_ipc([1.0, 3.0]) == pytest.approx(1.5)

    def test_slowdowns_ratio(self):
        np.testing.assert_allclose(slowdowns([2.0, 1.0], [1.0, 1.0]), [2.0, 1.0])

    def test_fair_slowdown_is_the_mean(self):
        assert fair_slowdown([2.0, 1.0], [1.0, 1.0]) == pytest.approx(1.5)

    def test_unfairness_ratio(self):
        assert unfairness([2.0, 1.0], [1.0, 1.0]) == pytest.approx(2.0)
        assert unfairness([1.0, 1.0], [1.0, 1.0]) == pytest.approx(1.0)

    def test_stalled_core_is_infinite(self):
        assert fair_slowdown([1.0, 1.0], [1.0, 0.0]) == float("inf")
        assert unfairness([1.0, 1.0], [1.0, 0.0]) == float("inf")
