"""Tidy tables: schema validation, queries, round-trip-safe codec."""

import numpy as np
import pytest

from repro.analysis.tables import (
    SCHEMA_COLUMNS,
    TableBuilder,
    TidyTable,
    concat,
    decode_cell,
    encode_cell,
    flatten_row,
    unflatten_row,
)


class TestCellCodec:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, -3, 1.5, 0.1 + 0.2, "plain", "1.5", "", "[1]",
         [1, 2], {"a": 1}, [{"x": [1.0]}]],
    )
    def test_roundtrip(self, value):
        assert decode_cell(encode_cell(value)) == value

    def test_floats_keep_repr_precision(self):
        assert decode_cell(encode_cell(1.0 / 3.0)) == 1.0 / 3.0  # bit-exact

    def test_numpy_scalars_become_plain(self):
        assert encode_cell(np.float64(1.5)) == "1.5"
        assert encode_cell(np.int64(3)) == "3"

    def test_tuples_come_back_as_lists(self):
        assert decode_cell(encode_cell((1, 2))) == [1, 2]

    def test_none_is_the_empty_cell(self):
        assert encode_cell(None) == ""
        assert decode_cell("") is None


class TestFlatten:
    def test_deep_nesting(self):
        flat = flatten_row({"a": {"b": {"c": 1}}})
        assert flat == {"a.b.c": 1}
        assert unflatten_row(flat) == {"a": {"b": {"c": 1}}}

    def test_dotted_keys_escape(self):
        row = {"a.b": 1, "a": {"b": 2}}
        flat = flatten_row(row)
        assert set(flat) == {"a\\.b", "a.b"}
        assert unflatten_row(flat) == row

    def test_empty_dict_is_a_leaf(self):
        assert flatten_row({"a": {}}) == {"a": {}}


class TestTidyTable:
    @pytest.fixture
    def table(self):
        b = TableBuilder("fig99")
        for wl, mech, v in [("w0", "pt", 1.0), ("w0", "cp", 2.0), ("w1", "pt", 3.0)]:
            b.add(metric="hs", value=v, workload=wl, category="pref_agg",
                  mechanism=mech, seed=7)
        return b.build()

    def test_schema_columns_lead(self, table):
        assert table.columns == SCHEMA_COLUMNS
        assert len(table) == 3

    def test_filter_and_values(self, table):
        assert table.values("value", mechanism="pt") == [1.0, 3.0]
        assert len(table.filter(lambda r: r["value"] > 1.5)) == 2

    def test_distinct_keeps_first_seen_order(self, table):
        assert table.distinct("mechanism") == ["pt", "cp"]

    def test_group(self, table):
        groups = table.group("workload")
        assert set(groups) == {("w0",), ("w1",)}
        assert len(groups[("w0",)]) == 2

    def test_pivot(self, table):
        headers, rows = table.pivot("workload", "mechanism")
        assert headers == ["workload", "pt", "cp"]
        assert rows == [["w0", 1.0, 2.0], ["w1", 3.0, None]]

    def test_csv_roundtrip(self, table):
        back = TidyTable.from_csv(table.to_csv())
        assert back.columns == table.columns
        assert back.rows == table.rows

    def test_to_records_drops_absent_cells(self, table):
        rec = table.to_records()[0]
        assert rec == {"figure": "fig99", "workload": "w0", "category": "pref_agg",
                       "mechanism": "pt", "seed": 7, "metric": "hs", "value": 1.0}

    def test_from_csv_empty(self):
        assert len(TidyTable.from_csv("")) == 0


class TestTableBuilder:
    def test_extras_declared_up_front(self):
        b = TableBuilder("f", extra_columns=("ways",))
        b.add(metric="ipc", value=1.0, ways=4)
        t = b.build()
        assert t.columns == SCHEMA_COLUMNS + ("ways",)
        assert t.rows[0]["ways"] == 4

    def test_undeclared_extra_rejected(self):
        with pytest.raises(ValueError, match="undeclared"):
            TableBuilder("f").add(metric="m", value=1, ways=4)

    def test_extra_cannot_shadow_schema(self):
        with pytest.raises(ValueError, match="shadows"):
            TableBuilder("f", extra_columns=("metric",))

    def test_add_metrics_shares_context(self):
        t = TableBuilder("f").add_metrics({"a": 1, "b": 2}, workload="w").build()
        assert [(r["metric"], r["value"], r["workload"]) for r in t] == [
            ("a", 1, "w"), ("b", 2, "w")]

    def test_concat_unions_columns(self):
        t1 = TableBuilder("f", extra_columns=("ways",)).add(
            metric="m", value=1, ways=2).build()
        t2 = TableBuilder("f", extra_columns=("core",)).add(
            metric="m", value=2, core=0).build()
        merged = concat([t1, t2])
        assert merged.columns == SCHEMA_COLUMNS + ("ways", "core")
        assert len(merged) == 2
