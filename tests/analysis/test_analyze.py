"""Multi-seed analysis pipeline: seed axis, summaries, determinism.

Statistical behavior is pinned on synthetic observation tables (fast,
exact); one end-to-end class runs the real engine at a reduced scale to
cover the seed-sweep execution path.
"""

import dataclasses

import pytest

from repro.analysis.analyze import (
    DEFAULT_METRICS,
    OVERALL,
    AnalysisResult,
    collect_observations,
    run_analysis,
    seed_axis,
    summarize,
    write_analysis,
)
from repro.analysis.tables import TableBuilder
from repro.experiments.config import TINY
from repro.experiments.engine import ExperimentSession

SC = dataclasses.replace(
    TINY, name="unit", quantum=256, sample_units=256, exec_units=2048,
    alone_accesses=4096, workloads_per_category=1,
)


class TestSeedAxis:
    def test_consecutive_from_base(self):
        assert seed_axis(2019, 3) == (2019, 2020, 2021)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            seed_axis(2019, 0)


def synthetic_obs():
    """2 categories x 2 workloads x 2 seeds x 2 mechanisms, one metric."""
    b = TableBuilder("analysis")
    base = {("pt", 0): 1.00, ("pt", 1): 1.02, ("cmm-a", 0): 1.10, ("cmm-a", 1): 1.14}
    for cat_i, cat in enumerate(("pref_agg", "pref_fri")):
        for wl_i in range(2):
            for seed in (2019, 2020):
                for mech in ("pt", "cmm-a"):
                    v = base[(mech, wl_i)] + 0.01 * seed % 7 + 0.001 * cat_i
                    b.add(metric="hs_norm", value=v, workload=f"{cat}-{wl_i:02d}",
                          category=cat, mechanism=mech, seed=seed)
    return b.build()


class TestSummarize:
    def test_rows_per_group_mechanism_metric(self):
        s = summarize(synthetic_obs(), metrics=("hs_norm",), vs="pt")
        # (2 categories + overall) x 2 mechanisms.
        assert len(s) == 6
        assert set(s.distinct("category")) == {"pref_agg", "pref_fri", OVERALL}

    def test_reference_mechanism_has_no_p_values(self):
        s = summarize(synthetic_obs(), metrics=("hs_norm",), vs="pt")
        for r in s.filter(mechanism="pt"):
            assert r["p_perm"] is None and r["p_sign"] is None and r["vs"] is None

    def test_comparison_rows_are_paired_on_workload_and_seed(self):
        s = summarize(synthetic_obs(), metrics=("hs_norm",), vs="pt")
        overall = s.filter(mechanism="cmm-a", category=OVERALL).rows[0]
        assert overall["n"] == 8  # 2 cats x 2 workloads x 2 seeds
        assert overall["vs"] == "pt"
        # cmm-a beats pt on every pair: the sign test is exact.
        assert overall["p_sign"] == pytest.approx(2 * 1 / 2**8)
        assert 0.0 < overall["p_perm"] <= 1.0
        assert overall["ci_lo"] <= overall["mean"] <= overall["ci_hi"]

    def test_same_bootstrap_seed_is_bit_identical(self):
        a = summarize(synthetic_obs(), metrics=("hs_norm",), bootstrap_seed=5)
        b = summarize(synthetic_obs(), metrics=("hs_norm",), bootstrap_seed=5)
        assert a.rows == b.rows

    def test_different_bootstrap_seed_moves_the_ci(self):
        a = summarize(synthetic_obs(), metrics=("hs_norm",), bootstrap_seed=5)
        b = summarize(synthetic_obs(), metrics=("hs_norm",), bootstrap_seed=6)
        assert a.rows != b.rows

    def test_absent_metrics_are_skipped(self):
        s = summarize(synthetic_obs(), metrics=("nope", "hs_norm"))
        assert s.distinct("metric") == ["hs_norm"]


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory) -> AnalysisResult:
        cache = tmp_path_factory.mktemp("analysis-cache")
        with ExperimentSession(cache_dir=cache, max_workers=1) as session:
            return run_analysis(("pt",), SC, n_seeds=2, vs="pt",
                                n_resamples=200, session=session)

    def test_observations_cover_the_seed_axis(self, result):
        assert result.seeds == (2019, 2020)
        assert set(result.observations.distinct("seed")) == {2019, 2020}
        # baseline rides along with every mechanism sweep
        assert set(result.observations.distinct("mechanism")) >= {"baseline", "pt"}

    def test_fairness_metrics_present(self, result):
        metrics = set(result.observations.distinct("metric"))
        assert {"hm_ipc", "fair_slowdown", "unfairness"} <= metrics

    def test_summary_covers_default_metrics(self, result):
        assert set(result.summary.distinct("metric")) == set(DEFAULT_METRICS)
        overall = result.summary.filter(category=OVERALL, metric="hs_norm")
        assert {r["mechanism"] for r in overall} >= {"baseline", "pt"}

    def test_spec_charts_the_summary(self, result):
        assert result.spec["layer"][0]["encoding"]["y"]["field"] == "mean"
        assert len(result.spec["data"]["values"]) == len(
            result.summary.filter(metric="hs_norm"))

    def test_write_analysis_emits_the_set(self, result, tmp_path):
        paths = write_analysis(result, tmp_path)
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "manifest.json", "observations.csv", "summary.csv", "summary.vl.json"]
        assert paths["observations.csv"].read_text().startswith("figure,")

    def test_warm_cache_rerun_is_bit_identical(self, result, tmp_path_factory):
        cache = tmp_path_factory.mktemp("analysis-cache2")
        with ExperimentSession(cache_dir=cache, max_workers=1) as session:
            again = run_analysis(("pt",), SC, n_seeds=2, vs="pt",
                                 n_resamples=200, session=session)
        assert again.observations.to_csv() == result.observations.to_csv()
        assert again.summary.to_csv() == result.summary.to_csv()


class TestCollectObservations:
    def test_one_row_per_seed_workload_mechanism_metric(self, tmp_path):
        with ExperimentSession(cache_dir=tmp_path / "c", max_workers=1) as session:
            obs = collect_observations(("pt",), SC, seeds=(2019,), session=session)
        pt = obs.filter(mechanism="pt", metric="hs_norm")
        # workloads_per_category=1 x 4 categories x 1 seed
        assert len(pt) == 4
        assert all(r["seed"] == 2019 for r in pt)
