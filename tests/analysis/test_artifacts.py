"""The figure artifact layer: tidy conversion, Vega specs, golden checks.

Synthetic figure dicts (fixed numbers, same shapes the
``repro.experiments.figures`` drivers produce) keep this module fast
and fully deterministic; the committed snapshot goldens under
``tests/goldens/analysis/snapshot`` pin the emitted bytes.
"""

from pathlib import Path

import pytest

from repro.analysis.artifacts import (
    ARTIFACT_SCHEMA_VERSION,
    FIGURE_IDS,
    BuiltFigure,
    check_artifacts,
    figure_table,
    figure_vega,
    get_figure_spec,
    write_artifacts,
)
from repro.analysis.tables import SCHEMA_COLUMNS

SNAPSHOT_GOLDENS = Path(__file__).parent.parent / "goldens" / "analysis" / "snapshot"


def fig13_dict() -> dict:
    return {
        "figure": "fig13",
        "metric": "hs_norm",
        "rows": [
            {"workload": "pref_agg-00", "category": "pref_agg",
             "pt": 1.05, "cpa": 1.125, "cmm-a": 1.25},
            {"workload": "pref_fri-00", "category": "pref_fri",
             "pt": 1.0, "cpa": 0.975, "cmm-a": 1.0625},
        ],
        "category_means": {
            "pref_agg": {"pt": 1.05, "cpa": 1.125, "cmm-a": 1.25},
            "pref_fri": {"pt": 1.0, "cpa": 0.975, "cmm-a": 1.0625},
        },
    }


def table1_dict() -> dict:
    return {
        "figure": "table1",
        "rows": [
            {"core": 0, "benchmark": "429.mcf", "M2_l2_pref_miss_frac": 0.5,
             "M3_l2_ptr": 1000.0, "M7_llc_pt": 0.25},
            {"core": 1, "benchmark": "453.povray", "M2_l2_pref_miss_frac": 0.125,
             "M3_l2_ptr": 50.0, "M7_llc_pt": 0.0625},
        ],
    }


class TestRegistry:
    def test_all_report_figures_registered(self):
        assert set(FIGURE_IDS) >= {"table1", "fig01", "fig02", "fig03", "fig05",
                                   "fig13", "fig14", "fig15"}

    def test_unknown_id_names_the_valid_set(self):
        with pytest.raises(KeyError, match="fig13"):
            get_figure_spec("fig99")


class TestTidyConversion:
    def test_mechanism_rows_one_observation_each(self):
        t = figure_table(fig13_dict(), seed=2019)
        assert t.columns == SCHEMA_COLUMNS
        obs = t.filter(metric="hs_norm")
        assert len(obs) == 6  # 2 workloads x 3 mechanisms
        assert {r["mechanism"] for r in obs} == {"pt", "cpa", "cmm-a"}
        assert all(r["seed"] == 2019 for r in t)

    def test_category_means_separate_metric_no_workload(self):
        t = figure_table(fig13_dict())
        means = t.filter(metric="hs_norm_mean")
        assert len(means) == 6
        assert all(r["workload"] is None for r in means)
        assert means.values("value", category="pref_agg", mechanism="cmm-a") == [1.25]

    def test_table1_extras(self):
        t = figure_table(table1_dict(), seed=1)
        assert t.columns == SCHEMA_COLUMNS + ("core", "benchmark")
        assert len(t) == 6  # 2 cores x 3 metrics
        assert t.values("value", core=0, metric="M3_l2_ptr") == [1000.0]

    def test_fig03_unrolls_ways_numerically_sorted(self):
        fig = {"figure": "fig03", "rows": [
            {"benchmark": "b", "ipc_by_ways": {"12": 1.2, "2": 0.5, "4": 0.8},
             "min_ways_90pct": 12, "min_ways_80pct": 4}]}
        t = figure_table(fig)
        ipc = t.filter(metric="ipc")
        assert [(r["ways"], r["value"]) for r in ipc] == [(2, 0.5), (4, 0.8), (12, 1.2)]
        assert t.values("value", metric="min_ways_90pct") == [12]

    def test_fig05_derives_n_agg(self):
        fig = {"figure": "fig05", "rows": [
            {"workload": "w", "category": "pref_agg", "benchmarks": ["a", "b"],
             "agg_set": [0], "agg_benchmarks": ["a"]}]}
        t = figure_table(fig)
        assert t.values("value", metric="n_agg") == [1]
        assert t.values("value", metric="agg_set") == [[0]]


class TestVegaConversion:
    def test_mechanism_chart_filters_its_metric(self):
        spec = figure_vega(fig13_dict(), seed=2019)
        assert spec["transform"] == [{"filter": "datum.metric == 'hs_norm'"}]
        assert spec["encoding"]["y"]["aggregate"] == "mean"
        assert spec["usermeta"]["repro"]["schema"] == ARTIFACT_SCHEMA_VERSION

    def test_table1_is_a_heatmap(self):
        spec = figure_vega(table1_dict())
        assert spec["mark"] == {"type": "rect"}


def build(figure: dict, *, seed=2019) -> BuiltFigure:
    spec = get_figure_spec(figure["figure"])
    table = spec.table(figure, seed=seed)
    return BuiltFigure(spec.fig_id, figure, table, spec.spec(table))


@pytest.fixture
def artifact_dir(tmp_path):
    built = [build(fig13_dict()), build(table1_dict())]
    write_artifacts(built, tmp_path / "out", scale="unit", seed=2019)
    return tmp_path / "out"


class TestWriteAndCheck:
    def test_emits_csv_vega_manifest(self, artifact_dir):
        names = sorted(p.name for p in artifact_dir.iterdir())
        assert names == ["fig13.csv", "fig13.vl.json", "manifest.json",
                         "table1.csv", "table1.vl.json"]

    def test_identical_sets_have_no_problems(self, artifact_dir, tmp_path):
        built = [build(fig13_dict()), build(table1_dict())]
        write_artifacts(built, tmp_path / "again", scale="unit", seed=2019)
        assert check_artifacts(tmp_path / "again", artifact_dir) == []

    def test_mismatch_names_schema_versions(self, artifact_dir, tmp_path):
        golden = tmp_path / "golden"
        built = [build(fig13_dict()), build(table1_dict())]
        write_artifacts(built, golden, scale="unit", seed=2019)
        (artifact_dir / "fig13.csv").write_text("tampered")
        problems = check_artifacts(artifact_dir, golden)
        assert any("content mismatch: fig13.csv" in p for p in problems)
        assert any("schema versions" in p for p in problems)

    def test_missing_and_unexpected(self, artifact_dir, tmp_path):
        golden = tmp_path / "golden"
        built = [build(fig13_dict()), build(table1_dict())]
        write_artifacts(built, golden, scale="unit", seed=2019)
        (artifact_dir / "fig13.csv").unlink()
        (artifact_dir / "extra.csv").write_text("x")
        problems = check_artifacts(artifact_dir, golden)
        assert "missing artifact: fig13.csv" in problems
        assert "unexpected artifact: extra.csv" in problems

    def test_pngs_are_exempt_from_unexpected(self, artifact_dir, tmp_path):
        golden = tmp_path / "golden"
        built = [build(fig13_dict()), build(table1_dict())]
        write_artifacts(built, golden, scale="unit", seed=2019)
        (artifact_dir / "fig13.png").write_bytes(b"\x89PNG")
        assert check_artifacts(artifact_dir, golden) == []

    def test_empty_golden_dir_is_an_error(self, artifact_dir, tmp_path):
        (tmp_path / "empty").mkdir()
        problems = check_artifacts(artifact_dir, tmp_path / "empty")
        assert problems and "empty" in problems[0]


class TestSnapshotGoldens:
    """Byte-for-byte against the committed snapshot artifacts."""

    def test_fig13_and_table1_match_committed_bytes(self, artifact_dir):
        assert SNAPSHOT_GOLDENS.is_dir(), "snapshot goldens not committed"
        assert check_artifacts(artifact_dir, SNAPSHOT_GOLDENS) == []


class TestRenderGate:
    def test_png_requires_optional_renderer(self, tmp_path):
        from repro.analysis.render import RenderUnavailable, renderer_available

        if renderer_available():
            pytest.skip("optional renderer installed")
        with pytest.raises(RenderUnavailable):
            write_artifacts([build(table1_dict())], tmp_path, scale="unit",
                            seed=2019, png=True)
