"""Vega-Lite spec builders: shape, inlined data, JSON-serializability."""

import json

import pytest

from repro.analysis.tables import TableBuilder
from repro.analysis.vega import (
    VEGA_LITE_SCHEMA,
    bar_chart,
    ci_bar_chart,
    heatmap,
    line_chart,
)


@pytest.fixture
def table():
    b = TableBuilder("fig99")
    b.add(metric="hs", value=1.1, workload="w0", category="c", mechanism="pt", seed=1)
    b.add(metric="hs", value=0.9, workload="w0", category="c", mechanism="cp", seed=1)
    return b.build()


def common_checks(spec, table):
    assert spec["$schema"] == VEGA_LITE_SCHEMA
    assert spec["usermeta"]["repro"] == {"figure": "fig99", "schema": 1}
    assert spec["data"]["values"] == table.to_records()
    json.dumps(spec, sort_keys=True)  # must serialize cleanly


class TestBarChart:
    def test_shape(self, table):
        spec = bar_chart(table, title="t", fig_id="fig99", schema_version=1,
                         x="category", x_offset="mechanism", color="mechanism",
                         y_title="HS")
        common_checks(spec, table)
        assert spec["mark"] == {"type": "bar"}
        assert spec["encoding"]["x"] == {"field": "category", "type": "nominal"}
        assert spec["encoding"]["xOffset"]["field"] == "mechanism"
        assert spec["encoding"]["color"]["field"] == "mechanism"
        assert spec["encoding"]["y"]["title"] == "HS"

    def test_aggregate_and_sort(self, table):
        spec = bar_chart(table, title="t", fig_id="fig99", schema_version=1,
                         x="category", aggregate="mean", sort=["c"])
        assert spec["encoding"]["y"]["aggregate"] == "mean"
        assert spec["encoding"]["x"]["sort"] == ["c"]


class TestLineChart:
    def test_quantitative_axes(self, table):
        spec = line_chart(table, title="t", fig_id="fig99", schema_version=1,
                          x="seed", color="mechanism")
        common_checks(spec, table)
        assert spec["mark"] == {"type": "line", "point": True}
        assert spec["encoding"]["x"]["type"] == "quantitative"


class TestHeatmap:
    def test_rect_with_value_color(self, table):
        spec = heatmap(table, title="t", fig_id="fig99", schema_version=1,
                       x="mechanism", y="metric")
        common_checks(spec, table)
        assert spec["mark"] == {"type": "rect"}
        assert spec["encoding"]["color"] == {"field": "value", "type": "quantitative"}


class TestCiBarChart:
    def test_layered_bars_and_rules(self):
        b = TableBuilder("fig99", extra_columns=("mean", "ci_lo", "ci_hi"))
        b.add(metric="hs", value=None, category="c", mechanism="pt",
              mean=1.0, ci_lo=0.9, ci_hi=1.1)
        t = b.build()
        spec = ci_bar_chart(t, title="t", fig_id="fig99", schema_version=1,
                            x="category", x_offset="mechanism", color="mechanism")
        assert spec["$schema"] == VEGA_LITE_SCHEMA
        bar, rule = spec["layer"]
        assert bar["mark"]["type"] == "bar"
        assert bar["encoding"]["y"]["field"] == "mean"
        assert rule["mark"]["type"] == "rule"
        assert rule["encoding"]["y"]["field"] == "ci_lo"
        assert rule["encoding"]["y2"] == {"field": "ci_hi"}
