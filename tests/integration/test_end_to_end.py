"""End-to-end shape tests: the paper's qualitative claims on the simulator.

These are the load-bearing integration checks — if one of them breaks,
a figure's shape has regressed.  They run at a reduced scale.
"""

import dataclasses

import numpy as np
import pytest

from repro.experiments.config import TINY
from repro.experiments.engine import default_session, run
from repro.workloads.mixes import make_mixes

SC = dataclasses.replace(
    TINY, name="e2e", quantum=512, sample_units=768, exec_units=8192, alone_accesses=8192
)


@pytest.fixture(scope="module")
def unfri_eval():
    mix = make_mixes("pref_unfri", 1, seed=2019)[0]
    return default_session().evaluate(mix, ("pt", "dunn", "pref-cp", "cmm-a"), SC)


@pytest.fixture(scope="module")
def noagg_eval():
    mix = make_mixes("pref_no_agg", 1, seed=2019)[0]
    return default_session().evaluate(mix, ("pt", "cmm-a"), SC)


class TestInterferenceExists:
    def test_corun_slower_than_alone(self, unfri_eval):
        """Multiprogrammed HS well below 1: interference is real."""
        assert unfri_eval.metrics["baseline"]["hs"] < 0.9


class TestThrottlingHelps:
    def test_pt_improves_unfriendly_workload(self, unfri_eval):
        assert unfri_eval.metrics["pt"]["hs_norm"] > 1.03

    def test_pt_reduces_memory_traffic(self, unfri_eval):
        assert unfri_eval.metrics["pt"]["bw_norm"] < 0.95

    def test_pt_near_neutral_on_no_agg(self, noagg_eval):
        assert noagg_eval.metrics["pt"]["hs_norm"] == pytest.approx(1.0, abs=0.05)


class TestPartitioningHelps:
    def test_pref_cp_beats_dunn_on_unfriendly(self, unfri_eval):
        assert (
            unfri_eval.metrics["pref-cp"]["hs_norm"]
            > unfri_eval.metrics["dunn"]["hs_norm"] - 0.005
        )

    def test_cp_keeps_bandwidth_roughly_baseline(self, unfri_eval):
        """CP does not reduce prefetch traffic (paper Sec. II-B)."""
        assert unfri_eval.metrics["pref-cp"]["bw_norm"] == pytest.approx(1.0, abs=0.05)


class TestCoordinationWins:
    def test_cmm_beats_pt_and_cp_on_unfriendly(self, unfri_eval):
        cmm = unfri_eval.metrics["cmm-a"]["hs_norm"]
        assert cmm > unfri_eval.metrics["pref-cp"]["hs_norm"]
        assert cmm >= unfri_eval.metrics["pt"]["hs_norm"] - 0.02

    def test_cmm_worst_case_above_80pct(self, unfri_eval):
        """Fig. 12: no application is hurt below 80%."""
        assert unfri_eval.metrics["cmm-a"]["worst"] >= 0.80

    def test_cmm_reduces_stalls(self, unfri_eval):
        """Fig. 15: CMM lowers aggregate L2-pending stalls per instruction."""
        assert unfri_eval.metrics["cmm-a"]["stalls_norm"] < 1.0


class TestControllerDynamics:
    def test_cmm_throttles_unfriendly_not_friendly(self):
        """On a pref_agg mix, the chosen config partitions the Agg set
        and only ever throttles unfriendly cores."""
        from repro.core.controller import CMMController
        from repro.core.coordinated import CMMPolicy
        from repro.core.epoch import EpochConfig
        from repro.experiments.runner import build_machine
        from repro.platform.simulated import SimulatedPlatform
        from repro.workloads.speclike import benchmark

        mix = make_mixes("pref_agg", 1, seed=2019)[0]
        machine = build_machine(mix, SC)
        policy = CMMPolicy("a")
        ctl = CMMController(
            SimulatedPlatform(machine),
            policy,
            epoch_cfg=EpochConfig(exec_units=SC.exec_units, sample_units=SC.sample_units),
        )
        stats = ctl.run(1)
        chosen = stats.epochs[0].chosen
        friendly, unfriendly = policy.last_split
        # friendly cores never lose their prefetchers under CMM
        for c in friendly:
            assert c not in chosen.throttled_cores()
        # every detected-aggressive core is in the small partition (variant a)
        for c in policy.last_agg_set:
            assert chosen.core_clos[c] != 0
        # detected cores genuinely map to aggressive benchmarks
        for c in policy.last_agg_set:
            assert benchmark(mix.benchmarks[c]).pref_aggressive

    def test_empty_agg_falls_back_to_dunn(self):
        from repro.core.controller import CMMController
        from repro.core.coordinated import CMMPolicy
        from repro.core.epoch import EpochConfig
        from repro.experiments.runner import build_machine
        from repro.platform.simulated import SimulatedPlatform

        mix = make_mixes("pref_no_agg", 1, seed=2019)[0]
        machine = build_machine(mix, SC)
        policy = CMMPolicy("a")
        ctl = CMMController(
            SimulatedPlatform(machine),
            policy,
            epoch_cfg=EpochConfig(exec_units=SC.exec_units, sample_units=SC.sample_units),
        )
        stats = ctl.run(1)
        assert policy.last_agg_set == ()
        assert stats.epochs[0].chosen.throttled_cores() == ()


class TestDeterminism:
    def test_full_evaluation_reproducible(self):
        mix = make_mixes("pref_agg", 1, seed=2019)[0]
        a = run(mix, "cmm-a", SC)
        b = run(mix, "cmm-a", SC)
        np.testing.assert_allclose(a.ipc, b.ipc)


class TestPhaseAdaptation:
    def test_cmm_redecides_across_phases(self):
        """A workload whose core 0 alternates between a streaming phase
        and a tiny compute phase: CMM's per-epoch re-detection must
        produce different Agg sets in different epochs."""
        import dataclasses

        from repro.core.controller import CMMController
        from repro.core.epoch import EpochConfig
        from repro.core.throttling import PrefetchThrottlingPolicy
        from repro.platform.simulated import SimulatedPlatform
        from repro.sim.machine import Machine
        from repro.sim.trace import PhasedTrace, SequentialStream, TraceGenerator
        from repro.workloads.speclike import build_trace

        sc = SC
        params = sc.params()
        m = Machine(params, quantum=sc.quantum)

        # Phase A: aggressive stream; phase B: tiny L2-resident loop.
        base0 = m.core_base_line(0)
        stream = TraceGenerator(
            [SequentialStream(1, base0, params.llc.lines * 4)], [1.0],
            inst_per_mem=5.0, mlp=8.0, seed=1,
        )
        quiet = TraceGenerator(
            [SequentialStream(2, base0 + (1 << 28), 64)], [1.0],
            inst_per_mem=12.0, mlp=3.0, seed=2,
        )
        phase_len = sc.exec_units + 12 * sc.sample_units  # ~one epoch per phase
        m.attach_trace(0, PhasedTrace([stream, quiet], phase_len))
        for core in range(1, 4):
            m.attach_trace(core, build_trace(
                "453.povray", llc_lines=params.llc.lines,
                base_line=m.core_base_line(core), seed=core))

        class RecordingPT(PrefetchThrottlingPolicy):
            def __init__(self):
                super().__init__()
                self.agg_history = []

            def plan(self, ctx):
                rc = super().plan(ctx)
                self.agg_history.append(self.last_agg_set)
                return rc

        policy = RecordingPT()
        ctl = CMMController(
            SimulatedPlatform(m), policy,
            epoch_cfg=EpochConfig(exec_units=sc.exec_units, sample_units=sc.sample_units),
        )
        ctl.run(4)
        # detection changed across epochs: streaming phases flag core 0,
        # quiet phases don't
        assert len(set(policy.agg_history)) >= 2
        assert (0,) in policy.agg_history
        assert () in policy.agg_history
