"""Group-level throttling scalability (paper Sec. III-B1).

With a large Agg set the exhaustive 2^N search is infeasible; the
paper clusters Agg cores into at most 3 groups by L2 PTR.  These tests
run a 12-core machine whose Agg set exceeds ``max_exhaustive`` and
check the whole control loop stays within its interval budget while
still improving the system.
"""

import dataclasses

import pytest

from repro.core.controller import CMMController
from repro.core.epoch import EpochConfig
from repro.core.throttling import PrefetchThrottlingPolicy
from repro.experiments.config import TINY
from repro.experiments.runner import build_machine
from repro.platform.simulated import SimulatedPlatform
from repro.workloads.mixes import make_mixes

N_CORES = 12
SC = dataclasses.replace(
    TINY,
    name="scal",
    n_cores=N_CORES,
    quantum=512,
    sample_units=768,
    exec_units=8192,
)


@pytest.fixture(scope="module")
def run():
    """One PT epoch on a 12-core pref_unfri mix (4 unfriendly + 8 others)."""
    mix = make_mixes("pref_unfri", 1, n_cores=N_CORES, seed=7)[0]
    machine = build_machine(mix, SC)
    policy = PrefetchThrottlingPolicy(max_exhaustive=3, n_groups=3)
    ctl = CMMController(
        SimulatedPlatform(machine),
        policy,
        epoch_cfg=EpochConfig(exec_units=SC.exec_units, sample_units=SC.sample_units),
    )
    stats = ctl.run(1)
    return mix, policy, stats


class TestGroupLevelScalability:
    def test_large_agg_set_detected(self, run):
        _, policy, _ = run
        assert len(policy.last_agg_set) > 3  # forces the group-level path

    def test_interval_budget_respected(self, run):
        _, _, stats = run
        # 2 fixed + at most 2^3-2 combos + 1 re-reference = 9 <= budget
        assert stats.epochs[0].sampling_intervals <= EpochConfig().max_sampling_intervals

    def test_throttled_cores_within_agg_set(self, run):
        _, policy, stats = run
        chosen = stats.epochs[0].chosen
        assert set(chosen.throttled_cores()) <= set(policy.last_agg_set)

    def test_all_cores_accounted(self, run):
        mix, _, stats = run
        assert (stats.ipc_all()[: mix.n_cores] > 0).all()
