"""JSON/CSV export of figure results."""

import json

import numpy as np
import pytest

from repro.experiments.export import figure_to_json, rows_from_csv, rows_to_csv, write_figure


@pytest.fixture
def figure():
    return {
        "figure": "fig99",
        "metric": "hs_norm",
        "rows": [
            {"workload": "w-00", "category": "pref_agg", "pt": 1.05,
             "agg_set": (1, 2), "ipc_by_ways": {1: 0.5, 20: 1.0}},
            {"workload": "w-01", "category": "pref_agg", "pt": 0.98,
             "agg_set": (), "ipc_by_ways": {1: 0.4, 20: 0.9}},
        ],
        "category_means": {"pref_agg": {"pt": np.float64(1.015)}},
    }


class TestJson:
    def test_roundtrip(self, figure):
        data = json.loads(figure_to_json(figure))
        assert data["figure"] == "fig99"
        assert data["rows"][0]["agg_set"] == [1, 2]

    def test_numpy_scalars_serialised(self, figure):
        data = json.loads(figure_to_json(figure))
        assert data["category_means"]["pref_agg"]["pt"] == pytest.approx(1.015)

    def test_unserialisable_rejected(self):
        with pytest.raises(TypeError):
            figure_to_json({"x": object()})


class TestCsv:
    def test_header_and_rows(self, figure):
        text = rows_to_csv(figure["rows"])
        lines = text.strip().splitlines()
        assert lines[0].startswith("workload,category,pt")
        assert len(lines) == 3

    def test_nested_dict_flattened(self, figure):
        text = rows_to_csv(figure["rows"])
        assert "ipc_by_ways.1" in text.splitlines()[0]

    def test_lists_json_encoded(self, figure):
        # The old exporter ";"-joined sequences with no escaping; cells
        # are now JSON so they decode back to the original values.
        text = rows_to_csv(figure["rows"])
        assert "[1,2]" in text
        assert "1;2" not in text

    def test_empty(self):
        assert rows_to_csv([]) == ""

    def test_roundtrip_restores_types(self, figure):
        rows = rows_from_csv(rows_to_csv(figure["rows"]))
        assert rows[0]["workload"] == "w-00"
        assert rows[0]["pt"] == 1.05
        assert rows[0]["agg_set"] == [1, 2]  # tuples come back as lists
        assert rows[1]["agg_set"] == []
        assert rows[0]["ipc_by_ways"] == {"1": 0.5, "20": 1.0}

    def test_roundtrip_full_float_precision(self):
        tricky = [{"v": 0.1 + 0.2, "w": 1.0 / 3.0}]
        rows = rows_from_csv(rows_to_csv(tricky))
        assert rows[0]["v"] == 0.1 + 0.2  # bit-identical, not approx
        assert rows[0]["w"] == 1.0 / 3.0

    def test_roundtrip_ambiguous_strings(self):
        # A string that *looks* numeric must survive as a string.
        tricky = [{"a": "1.5", "b": 1.5, "c": "", "d": None, "e": True}]
        rows = rows_from_csv(rows_to_csv(tricky))
        assert rows[0]["a"] == "1.5"
        assert rows[0]["b"] == 1.5
        assert rows[0]["c"] == ""
        assert rows[0]["d"] is None
        assert rows[0]["e"] is True

    def test_roundtrip_dotted_keys(self):
        # Literal dots inside keys are escaped, not treated as nesting.
        tricky = [{"a.b": 1, "a": {"b": 2}}]
        rows = rows_from_csv(rows_to_csv(tricky))
        assert rows[0]["a.b"] == 1
        assert rows[0]["a"] == {"b": 2}


class TestWriteFigure:
    def test_writes_both_files(self, figure, tmp_path):
        jpath, cpath = write_figure(figure, tmp_path)
        assert jpath.name == "fig99.json"
        assert cpath.name == "fig99.csv"
        assert json.loads(jpath.read_text())["figure"] == "fig99"
        assert "w-00" in cpath.read_text()

    def test_custom_stem_and_mkdir(self, figure, tmp_path):
        jpath, _ = write_figure(figure, tmp_path / "deep" / "dir", stem="custom")
        assert jpath.name == "custom.json"
        assert jpath.exists()


class TestTraceExport:
    @pytest.fixture
    def traces(self):
        from repro.core.trace import EpochTrace, StageTrace

        return [
            EpochTrace(
                epoch=0,
                policy="cmm-a",
                stages=[
                    StageTrace("sense", {"hm_ipc": 0.7}),
                    StageTrace("classify", {"agg_set": [0, 1]}),
                    StageTrace(
                        "decide:coordinated-throttle",
                        {"candidates": [{"off": [], "hm_ipc": 0.7}, {"off": [1], "hm_ipc": 0.8}],
                         "best_hm": 0.8, "reference_hm": 0.7, "reason": "adopted"},
                    ),
                    StageTrace("decide:dunn", {"reason": "not-applicable"}, skipped=True),
                ],
                winner={"throttled": [1]},
                sampling_intervals=4,
            )
        ]

    def test_one_row_per_stage(self, traces):
        from repro.experiments.export import traces_to_rows

        rows = traces_to_rows(traces)
        assert [r["stage"] for r in rows] == [
            "sense", "classify", "decide:coordinated-throttle", "decide:dunn"]
        sweep = rows[2]
        assert sweep["n_candidates"] == 2 and sweep["best_hm"] == 0.8
        assert sweep["winner_throttled"] == [1]
        assert rows[3]["skipped"] is True and rows[3]["reason"] == "not-applicable"

    def test_write_traces_emits_json_and_csv(self, traces, tmp_path):
        from repro.core.trace import traces_from_dicts
        from repro.experiments.export import write_traces

        jpath, cpath = write_traces(traces, tmp_path, stem="t")
        assert traces_from_dicts(json.loads(jpath.read_text())) == traces
        header, *rows = cpath.read_text().strip().splitlines()
        assert "stage" in header and "winner_throttled" in header
        assert len(rows) == 4

    def test_trace_csv_roundtrip(self, traces):
        from repro.experiments.export import traces_to_csv, traces_to_rows

        rows = rows_from_csv(traces_to_csv(traces))
        assert rows[2]["winner_throttled"] == [1]
        assert rows[3]["skipped"] is True
        assert len(rows) == len(traces_to_rows(traces))
