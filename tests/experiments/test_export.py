"""JSON/CSV export of figure results."""

import json

import numpy as np
import pytest

from repro.experiments.export import figure_to_json, rows_to_csv, write_figure


@pytest.fixture
def figure():
    return {
        "figure": "fig99",
        "metric": "hs_norm",
        "rows": [
            {"workload": "w-00", "category": "pref_agg", "pt": 1.05,
             "agg_set": (1, 2), "ipc_by_ways": {1: 0.5, 20: 1.0}},
            {"workload": "w-01", "category": "pref_agg", "pt": 0.98,
             "agg_set": (), "ipc_by_ways": {1: 0.4, 20: 0.9}},
        ],
        "category_means": {"pref_agg": {"pt": np.float64(1.015)}},
    }


class TestJson:
    def test_roundtrip(self, figure):
        data = json.loads(figure_to_json(figure))
        assert data["figure"] == "fig99"
        assert data["rows"][0]["agg_set"] == [1, 2]

    def test_numpy_scalars_serialised(self, figure):
        data = json.loads(figure_to_json(figure))
        assert data["category_means"]["pref_agg"]["pt"] == pytest.approx(1.015)

    def test_unserialisable_rejected(self):
        with pytest.raises(TypeError):
            figure_to_json({"x": object()})


class TestCsv:
    def test_header_and_rows(self, figure):
        text = rows_to_csv(figure["rows"])
        lines = text.strip().splitlines()
        assert lines[0].startswith("workload,category,pt")
        assert len(lines) == 3

    def test_nested_dict_flattened(self, figure):
        text = rows_to_csv(figure["rows"])
        assert "ipc_by_ways.1" in text.splitlines()[0]

    def test_tuple_joined(self, figure):
        text = rows_to_csv(figure["rows"])
        assert "1;2" in text

    def test_empty(self):
        assert rows_to_csv([]) == ""


class TestWriteFigure:
    def test_writes_both_files(self, figure, tmp_path):
        jpath, cpath = write_figure(figure, tmp_path)
        assert jpath.name == "fig99.json"
        assert cpath.name == "fig99.csv"
        assert json.loads(jpath.read_text())["figure"] == "fig99"
        assert "w-00" in cpath.read_text()

    def test_custom_stem_and_mkdir(self, figure, tmp_path):
        jpath, _ = write_figure(figure, tmp_path / "deep" / "dir", stem="custom")
        assert jpath.name == "custom.json"
        assert jpath.exists()
