"""Workload runner and evaluation plumbing (simulator in the loop).

Uses a reduced scale so the whole module stays fast.
"""

import dataclasses

import numpy as np
import pytest

from repro.experiments.config import TINY
from repro.experiments.engine import default_session, run
from repro.experiments.runner import AloneCache, build_machine
from repro.workloads.mixes import make_mixes

# A deliberately small scale for unit testing the plumbing.
SC = dataclasses.replace(
    TINY, name="unit", quantum=256, sample_units=256, exec_units=2048, alone_accesses=4096
)


@pytest.fixture(scope="module")
def mix():
    return make_mixes("pref_agg", 1, seed=2019)[0]


@pytest.fixture(scope="module")
def cache():
    return AloneCache()


class TestBuildMachine:
    def test_one_trace_per_core(self, mix):
        m = build_machine(mix, SC)
        assert m.active_cores() == list(range(8))

    def test_too_many_cores_rejected(self):
        big = make_mixes("pref_agg", 1, seed=1)[0]
        sc = dataclasses.replace(SC, n_cores=4)
        with pytest.raises(ValueError):
            build_machine(big, sc)


class TestAloneCache:
    def test_positive_and_cached(self, cache):
        a = cache.ipc("410.bwaves", SC)
        b = cache.ipc("410.bwaves", SC)
        assert a > 0
        assert a == b
        assert len(cache._cache) == 1

    def test_ipcs_for_mix(self, cache, mix):
        arr = cache.ipcs_for(mix, SC)
        assert arr.shape == (8,)
        assert (arr > 0).all()


class TestRun:
    def test_baseline_run(self, mix):
        r = run(mix, "baseline", SC)
        assert r.mechanism == "baseline"
        assert (r.ipc > 0).all()
        assert r.mem_bandwidth_mbs > 0

    def test_deterministic(self, mix):
        a = run(mix, "baseline", SC)
        b = run(mix, "baseline", SC)
        np.testing.assert_allclose(a.ipc, b.ipc)

    def test_unknown_mechanism(self, mix):
        with pytest.raises(KeyError):
            run(mix, "bogus", SC)


class TestSessionEvaluate:
    @pytest.fixture(scope="class")
    def ev(self, mix, cache):
        return default_session().evaluate(mix, ("pt",), SC, alone_cache=cache)

    def test_baseline_metrics_are_identity(self, ev):
        m = ev.metrics["baseline"]
        assert m["hs_norm"] == 1.0
        assert m["ws"] == 1.0
        assert m["worst"] == 1.0

    def test_mechanism_metrics_present(self, ev):
        m = ev.metrics["pt"]
        for key in ("hs", "hs_norm", "ws", "worst", "bw_mbs", "bw_norm", "stalls_norm"):
            assert key in m

    def test_hs_consistency(self, ev):
        m = ev.metrics["pt"]
        assert m["hs_norm"] == pytest.approx(m["hs"] / ev.metrics["baseline"]["hs"])

    def test_hs_in_plausible_range(self, ev):
        assert 0.0 < ev.metrics["baseline"]["hs"] <= 1.0  # co-run never beats alone

    def test_worst_le_ws_bound(self, ev):
        # the minimum per-app ratio can't exceed the mean ratio
        assert ev.metrics["pt"]["worst"] <= ev.metrics["pt"]["ws"] + 1e-9


class TestRunPolicyObject:
    def test_custom_policy_and_sample_units(self, mix):
        from repro.core.partitioning import PrefCPPolicy

        r = run(
            mix, PrefCPPolicy(partition_factor=1.0), SC,
            label="pref-cp@1.0", sample_units=128,
        )
        assert r.mechanism == "pref-cp@1.0"
        assert (r.ipc > 0).all()

    def test_label_defaults_to_policy_name(self, mix):
        from repro.core.dunn import DunnPolicy

        r = run(mix, DunnPolicy(), SC)
        assert r.mechanism == "dunn"

    def test_detector_cfg_forwarded(self, mix):
        from repro.core.frontend import DetectorConfig
        from repro.core.throttling import PrefetchThrottlingPolicy

        # An impossible PTR floor: nothing can ever be detected.
        policy = PrefetchThrottlingPolicy()
        run(mix, policy, SC, detector_cfg=DetectorConfig(ptr_min=1e18))
        assert policy.last_agg_set == ()
