"""Figure drivers produce well-formed results (reduced scale)."""

import dataclasses


from repro.experiments.config import TINY
from repro.experiments.figures import (
    EvalStore,
    fig01_bandwidth,
    fig02_prefetch_speedup,
    fig03_way_sensitivity,
    fig05_detection,
    table1_metrics,
)
from repro.workloads.mixes import CATEGORIES
from repro.workloads.speclike import BENCHMARKS

SC = dataclasses.replace(
    TINY,
    name="figunit",
    quantum=256,
    sample_units=512,
    exec_units=2048,
    alone_accesses=4096,
    profile_accesses=8192,
    workloads_per_category=1,
)


class TestAloneFigures:
    def test_fig01_rows_cover_registry(self):
        d = fig01_bandwidth(SC)
        assert d["figure"] == "fig01"
        assert {r["benchmark"] for r in d["rows"]} == set(BENCHMARKS)
        for r in d["rows"]:
            assert r["total_bw_mbs"] >= 0.0

    def test_fig02_speedups(self):
        d = fig02_prefetch_speedup(SC)
        by_name = {r["benchmark"]: r for r in d["rows"]}
        assert by_name["410.bwaves"]["speedup_pct"] > 30.0
        assert by_name["rand_access"]["speedup_pct"] < 0.0

    def test_fig03_way_series(self):
        d = fig03_way_sensitivity(SC)
        by_name = {r["benchmark"]: r for r in d["rows"]}
        row = by_name["462.libquantum"]
        assert row["min_ways_90pct"] <= 2  # paper's key observation
        assert set(row["ipc_by_ways"]) <= {1, 2, 4, 6, 8, 12, 16, 20}


class TestDetectionFigure:
    def test_fig05_shapes(self):
        d = fig05_detection(SC)
        cats = {r["category"] for r in d["rows"]}
        assert cats == set(CATEGORIES)
        for r in d["rows"]:
            assert all(0 <= c < 8 for c in r["agg_set"])
            assert len(r["agg_benchmarks"]) == len(r["agg_set"])


class TestTable1:
    def test_metric_columns(self):
        d = table1_metrics(SC)
        assert len(d["rows"]) == 8
        for row in d["rows"]:
            for col in ("M1_l2_llc_traffic", "M4_pga", "M5_l2_pmr", "M7_llc_pt"):
                assert col in row
            assert 0.0 <= row["M5_l2_pmr"] <= 1.0


class TestEvalStore:
    def test_store_extends_incrementally(self):
        store = EvalStore(SC)
        mix = store.mixes("pref_unfri")[0]
        ev1 = store.eval(mix, ("pt",))
        ev2 = store.eval(mix, ("pt", "dunn"))
        assert ev1 is ev2
        assert "pt" in ev2.metrics and "dunn" in ev2.metrics

    def test_sweep_order(self):
        store = EvalStore(SC)
        evals = store.sweep(("pt",))
        assert [e.mix.category for e in evals] == list(CATEGORIES)
