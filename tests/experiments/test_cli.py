"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_scale_choices(self):
        args = build_parser().parse_args(["classify", "429.mcf", "--scale", "tiny"])
        assert args.scale == "tiny"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["classify", "x", "--scale", "huge"])


class TestBenchmarksCommand:
    def test_lists_registry(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "410.bwaves" in out
        assert "rand_access" in out
        assert "aggressive" in out


class TestMixesCommand:
    def test_all_categories(self, capsys):
        assert main(["mixes"]) == 0
        out = capsys.readouterr().out
        for cat in ("pref_fri", "pref_agg", "pref_unfri", "pref_no_agg"):
            assert cat in out

    def test_single_category(self, capsys):
        assert main(["mixes", "--category", "pref_unfri"]) == 0
        out = capsys.readouterr().out
        assert "pref_unfri-00" in out
        assert "pref_fri-00" not in out


class TestClassifyCommand:
    def test_unknown_benchmark_fails(self, capsys):
        assert main(["classify", "not-a-benchmark"]) == 2

    def test_classifies_small_benchmark(self, capsys):
        # povray is compute-bound: fast to profile even with the sweep
        assert main(["classify", "453.povray"]) == 0
        out = capsys.readouterr().out
        assert "matches registry    : True" in out
        assert "aggressive=False" in out


class TestCacheCommand:
    def test_stats_empty(self, capsys, tmp_path):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "entries    : 0" in out

    def test_stats_and_clear_roundtrip(self, capsys, tmp_path):
        from repro.experiments.engine import SCHEMA_VERSION, ResultCache

        root = tmp_path / "c"
        ResultCache(root).put(
            "ab" * 32, {"schema": SCHEMA_VERSION, "kind": "alone", "payload": {"ipc": 1.0}}
        )
        assert main(["cache", "stats", "--cache-dir", str(root)]) == 0
        out = capsys.readouterr().out
        assert "entries    : 1" in out and "alone" in out
        assert main(["cache", "clear", "--cache-dir", str(root)]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(root)]) == 0
        assert "entries    : 0" in capsys.readouterr().out

    def test_workers_flag_parsed(self):
        args = build_parser().parse_args(["run", "--workers", "4", "--no-cache"])
        assert args.workers == 4 and args.no_cache

    def test_stats_reports_corrupt_entries(self, capsys, tmp_path):
        from repro.experiments.engine import SCHEMA_VERSION, ResultCache

        root = tmp_path / "c"
        key = "ab" * 32
        ResultCache(root).put(
            key, {"schema": SCHEMA_VERSION, "kind": "alone", "payload": {"ipc": 1.0}}
        )
        (root / key[:2] / f"{key}.json").write_text("torn")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert main(["cache", "stats", "--cache-dir", str(root)]) == 0
        out = capsys.readouterr().out
        assert "corrupt    : 1" in out and "entries    : 0" in out


class TestTraceCommand:
    def test_bad_mix_index_is_an_error(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert main(["trace", "--mix", "99",
                     "--cache-dir", str(tmp_path / "c"), "--workers", "1"]) == 2
        assert "--mix must be in" in capsys.readouterr().err

    def test_timeline_renders_decisions(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        argv = ["trace", "--mechanism", "cmm-a",
                "--cache-dir", str(tmp_path / "c"), "--workers", "1"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        for needle in ("epoch 0", "cmm-a", "sense", "classify", "candidate",
                       "winner:", "agg_set"):
            assert needle in out, needle
        # Second invocation replays from cache, traces intact.
        assert main(argv) == 0
        assert "winner:" in capsys.readouterr().out

    def test_json_output_is_parseable(self, capsys, tmp_path, monkeypatch):
        import json

        from repro.core.trace import TRACE_SCHEMA_VERSION

        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert main(["trace", "--mechanism", "pt", "--epoch", "0", "--json",
                     "--cache-dir", str(tmp_path / "c"), "--workers", "1"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 1
        assert records[0]["schema"] == TRACE_SCHEMA_VERSION
        assert records[0]["policy"] == "pt"
        assert [s["stage"] for s in records[0]["stages"]][:2] == ["sense", "classify"]


class TestChaosCommand:
    def test_unknown_scenario_is_an_error(self, capsys):
        assert main(["chaos", "--scenario", "frobnicate"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_single_scenario_runs_clean(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert main(["chaos", "--scenario", "dropped-samples", "--seed", "3",
                     "--epochs", "4"]) == 0
        out = capsys.readouterr().out
        assert "dropped-samples seed=3" in out
        assert "1/1 scenarios ok" in out


class TestFiguresCommand:
    def test_unknown_figure_is_an_error(self, capsys, tmp_path):
        assert main(["figures", "fig99", "--out", str(tmp_path / "a"),
                     "--cache-dir", str(tmp_path / "c"), "--workers", "1"]) == 2
        assert "unknown figure 'fig99'" in capsys.readouterr().err

    @pytest.mark.slow
    def test_emits_and_checks_artifacts(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        cache = ["--cache-dir", str(tmp_path / "c"), "--workers", "1"]
        golden = tmp_path / "golden"
        assert main(["figures", "table1", "--out", str(golden)] + cache) == 0
        assert sorted(p.name for p in golden.iterdir()) == [
            "manifest.json", "table1.csv", "table1.vl.json"]

        # A warm-cache rebuild reproduces the goldens byte-for-byte.
        out = tmp_path / "out"
        assert main(["figures", "table1", "--out", str(out),
                     "--check", str(golden)] + cache) == 0
        assert "artifacts match goldens" in capsys.readouterr().out

        # Tampering is caught.
        (golden / "table1.csv").write_text("tampered")
        assert main(["figures", "table1", "--out", str(out),
                     "--check", str(golden)] + cache) == 1
        assert "content mismatch: table1.csv" in capsys.readouterr().err


class TestAnalyzeCommand:
    def test_vs_must_be_analyzed(self, capsys, tmp_path):
        assert main(["analyze", "--mechanism", "pt", "--vs", "cmm-a",
                     "--out", str(tmp_path / "a"),
                     "--cache-dir", str(tmp_path / "c"), "--workers", "1"]) == 2
        assert "--vs 'cmm-a' must be one of" in capsys.readouterr().err


@pytest.mark.slow
class TestRunAndFigureCommands:
    def test_run_command(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert main(["run", "--category", "pref_no_agg", "--workloads", "1",
                     "--mechanism", "pref-cp"]) == 0
        out = capsys.readouterr().out
        assert "pref_no_agg-00" in out
        assert "pref-cp" in out
        assert "HS norm" in out

    def test_figure_command_table1(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert main(["figure", "table1"]) == 0
        out = capsys.readouterr().out
        assert "M4_pga" in out
