"""ASCII rendering."""

from repro.experiments.report import render_series, render_table


class TestRenderTable:
    def test_alignment_and_floats(self):
        out = render_table(["name", "hs"], [["a", 1.23456], ["bb", 0.5]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in out
        assert "0.500" in out

    def test_title(self):
        out = render_table(["x"], [[1]], title="Fig 7")
        assert out.splitlines()[0] == "Fig 7"

    def test_column_width_fits_longest(self):
        out = render_table(["m"], [["longvalue"]])
        header, sep, row = out.splitlines()
        assert len(sep) >= len("longvalue")


class TestRenderSeries:
    def test_pairs(self):
        out = render_series("pt", ["fri", "agg"], [1.0, 1.5])
        assert out == "pt: fri=1.000, agg=1.500"
