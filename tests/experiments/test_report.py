"""ASCII rendering."""

from repro.experiments.report import render_series, render_table


class TestRenderTable:
    def test_alignment_and_floats(self):
        out = render_table(["name", "hs"], [["a", 1.23456], ["bb", 0.5]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in out
        assert "0.500" in out

    def test_title(self):
        out = render_table(["x"], [[1]], title="Fig 7")
        assert out.splitlines()[0] == "Fig 7"

    def test_column_width_fits_longest(self):
        out = render_table(["m"], [["longvalue"]])
        header, sep, row = out.splitlines()
        assert len(sep) >= len("longvalue")


class TestRenderSeries:
    def test_pairs(self):
        out = render_series("pt", ["fri", "agg"], [1.0, 1.5])
        assert out == "pt: fri=1.000, agg=1.500"


class TestRenderTraceTimeline:
    def test_timeline_shows_stages_candidates_winner(self):
        from repro.core.trace import EpochTrace, StageTrace
        from repro.experiments.report import render_trace_timeline

        traces = [
            EpochTrace(
                epoch=0,
                policy="cmm-a",
                stages=[
                    StageTrace("classify", {"agg_set": [0, 3]}),
                    StageTrace("decide:dunn", {"reason": "not-applicable"}, skipped=True),
                    StageTrace(
                        "decide:coordinated-throttle",
                        {"candidates": [{"off": [3], "hm_ipc": 0.81}], "reason": "adopted"},
                    ),
                ],
                winner={"throttled": [3], "clos_cbm": {"0": 255}},
                sampling_intervals=5,
            ),
            EpochTrace(epoch=1, policy="cmm-a", degraded=True),
        ]
        out = render_trace_timeline(traces, title="mix / cmm-a")
        assert "mix / cmm-a" in out
        assert "epoch 0" in out and "sampling_intervals=5" in out
        assert "agg_set=[0,3]" in out
        assert "skipped (not-applicable)" in out
        assert "candidate off=[3]" in out and "hm_ipc=0.8100" in out
        assert "winner: throttled=[3]" in out
        assert "DEGRADED" in out
