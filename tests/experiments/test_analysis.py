"""Analysis helpers: ground-truth prefetch accuracy, decision timeline."""

import dataclasses

import pytest

from repro.core.controller import CMMController
from repro.core.epoch import EpochConfig
from repro.core.policies import make_policy
from repro.experiments.analysis import (
    decision_timeline,
    prefetch_accuracy,
    timeline_summary,
)
from repro.experiments.config import TINY
from repro.experiments.runner import build_machine
from repro.platform.simulated import SimulatedPlatform
from repro.sim.machine import Machine
from repro.workloads.mixes import make_mixes
from tests.conftest import make_random_trace, make_seq_trace

SC = dataclasses.replace(TINY, name="ana", quantum=256, sample_units=512, exec_units=4096)


class TestPrefetchAccuracy:
    def test_stream_high_l2_accuracy(self, tiny_params):
        m = Machine(tiny_params, quantum=256)
        m.attach_trace(0, make_seq_trace(region=8192))
        m.run_accesses(4000)
        acc = prefetch_accuracy(m)
        assert len(acc) == 1
        assert acc[0].l2_accuracy > 0.7  # streamer prefetches get used

    def test_random_low_accuracy(self, tiny_params):
        m = Machine(tiny_params, quantum=256)
        m.attach_trace(0, make_random_trace(region=200_000))
        m.run_accesses(4000)
        acc = prefetch_accuracy(m)
        assert acc[0].l2_accuracy < 0.2  # adjacent-line buddies are useless

    def test_idle_cores_skipped(self, tiny_params):
        m = Machine(tiny_params, quantum=256)
        m.attach_trace(1, make_seq_trace())
        m.run_accesses(500)
        acc = prefetch_accuracy(m)
        assert [a.core for a in acc] == [1]


class TestDecisionTimeline:
    @pytest.fixture(scope="class")
    def stats(self):
        mix = make_mixes("pref_unfri", 1, seed=2019)[0]
        machine = build_machine(mix, SC)
        ctl = CMMController(
            SimulatedPlatform(machine),
            make_policy("cmm-a"),
            epoch_cfg=EpochConfig(exec_units=SC.exec_units, sample_units=SC.sample_units),
        )
        return ctl.run(2)

    def test_one_decision_per_epoch(self, stats):
        tl = decision_timeline(stats)
        assert len(tl) == 2
        assert [d.epoch for d in tl] == [0, 1]

    def test_decisions_reflect_configs(self, stats):
        tl = decision_timeline(stats)
        for d, rec in zip(tl, stats.epochs):
            assert d.throttled_cores == rec.chosen.throttled_cores()
            assert d.sampling_intervals == rec.sampling_intervals

    def test_cmm_on_unfri_partitions_something(self, stats):
        tl = decision_timeline(stats)
        assert any(d.partitioned_cores for d in tl)

    def test_summary_renders(self, stats):
        text = timeline_summary(stats)
        assert text.count("epoch") == 2
        assert "throttled=" in text
