"""Scale presets."""

import pytest

from repro.experiments.config import FULL, SCALES, SMALL, TINY, get_scale


class TestScales:
    def test_registry(self):
        assert set(SCALES) == {"tiny", "small", "full"}

    def test_default_is_tiny(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale().name == "tiny"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert get_scale().name == "small"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert get_scale("full").name == "full"

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_lookup_normalizes_case_and_whitespace(self, monkeypatch):
        assert get_scale("TINY").name == "tiny"
        monkeypatch.setenv("REPRO_SCALE", " Small ")
        assert get_scale().name == "small"

    def test_unknown_scale_reports_raw_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "HuGe")
        with pytest.raises(KeyError, match="'HuGe'"):
            get_scale()

    def test_cache_key_excludes_presentation_fields(self):
        d = TINY.cache_key()
        for absent in ("name", "workloads_per_category", "seed"):
            assert absent not in d
        assert d["llc_scale"] == TINY.llc_scale
        assert d["quantum"] == TINY.quantum

    def test_full_keeps_paper_ratio(self):
        assert FULL.exec_units // FULL.sample_units == 50
        assert FULL.workloads_per_category == 10

    def test_params_factory(self):
        p = TINY.params()
        assert p.n_cores == 8
        assert p.llc.size_bytes == 20 * 1024 * 1024 // 16

    def test_scales_ordered_by_size(self):
        assert TINY.exec_units < SMALL.exec_units < FULL.exec_units
