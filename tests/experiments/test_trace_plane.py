"""The trace plane must change *nothing* but wall-clock time.

Differential contract (mirrors ``tests/chaos/test_differential.py``):
with the plane on — serial store, shared-memory manifest, disk tier —
every run's payload is byte-identical to the plane-off (live
generation) path, decision/PMU fingerprints match the pre-hardening
captures, and content-addressed cache keys are untouched (the plane is
excluded from ``key_payload`` exactly like the ``sim_engine`` choice).
"""

import dataclasses
import hashlib
import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.core.controller import CMMController
from repro.core.epoch import EpochConfig
from repro.core.policies import make_policy
from repro.experiments.config import TINY
from repro.experiments.engine import (
    KIND_ALONE,
    KIND_MECHANISM,
    KIND_PROFILE,
    ExperimentSession,
    PlannedRun,
)
from repro.experiments.runner import build_machine, mechanism_trace_length
from repro.platform.simulated import SimulatedPlatform
from repro.sim.tracestore import TraceStore, shm_residue
from repro.workloads.mixes import make_mixes

SC = dataclasses.replace(
    TINY, name="unit", quantum=256, sample_units=256, exec_units=2048, alone_accesses=4096
)

# Same captures tests/chaos/test_differential.py pins: the plane must
# reproduce them bit for bit and leave the key space untouched.
PRE_HARDENING_FINGERPRINTS = {
    "baseline": "49455a3f0475a441298d02faaf53c874bb45bb4eac8a7c74791d1dccaad1526e",
    "cmm-a": "2322f568afb33f14f4142cee091e0a0ee93112e59b4bd2e0115fe665c7f5167d",
    "pt": "0df1235fa58d11e7f2642650cd8c903cc8891d23f22b49f67dd20541af353e1a",
}
PRE_HARDENING_KEYS = {
    "mech-cmm-a": "487ec95432f344df3af37724a663738135d7dd109e7c6232e97f4a4a784455b8",
    "alone-410.bwaves": "029c125f72c9cf1e9115fbcc5336d69262503209f36c2d9239fdb04e5e6c7f05",
    "profile-453.povray": "75943b3fb8ddbf18a5f02792e2dc5c3d0db08313ce2a9769306798bb976e68cb",
}

FORK = multiprocessing.get_context("fork")


@pytest.fixture
def plenty_of_cpus(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 8)


def the_mix():
    return make_mixes("pref_agg", 1, seed=2019)[0]


def fingerprint(stats):
    return hashlib.sha256(
        stats.totals.tobytes() + np.float64(stats.wall_cycles).tobytes()
    ).hexdigest()


def the_plan():
    mix = the_mix()
    return [
        PlannedRun(KIND_MECHANISM, SC, mix=mix, mechanism="baseline"),
        PlannedRun(KIND_MECHANISM, SC, mix=mix, mechanism="cmm-a"),
        PlannedRun(KIND_MECHANISM, SC, mix=mix, mechanism="pt"),
        PlannedRun(KIND_ALONE, SC, bench="410.bwaves"),
        PlannedRun(KIND_PROFILE, SC, bench="453.povray", way_sweep=(1, 4)),
    ]


def canonical(payloads):
    return json.dumps(payloads, sort_keys=True)


def execute(tmp_path, tag, **session_kwargs):
    session = ExperimentSession(
        scale=SC, cache_dir=tmp_path / tag, run_timeout=120, **session_kwargs
    )
    try:
        return session.execute(the_plan())
    finally:
        session.close()


class TestPayloadIdentity:
    def test_serial_store_matches_live(self, tmp_path):
        off = execute(tmp_path, "off", max_workers=1, trace_cache="off")
        mem = execute(tmp_path, "mem", max_workers=1, trace_cache="memory")
        disk = execute(tmp_path, "disk", max_workers=1, trace_cache="disk")
        assert canonical(mem) == canonical(off)
        assert canonical(disk) == canonical(off)

    def test_disk_replay_from_prior_session_matches(self, tmp_path):
        off = execute(tmp_path, "off", max_workers=1, trace_cache="off")
        # Two sessions share one cache dir: the second one's traces all
        # come from the first one's mmap-backed disk tier.
        execute(tmp_path, "warm", max_workers=1, trace_cache="disk")
        warm = execute(tmp_path, "warm2", max_workers=1, trace_cache="disk")
        assert canonical(warm) == canonical(off)

    def test_pool_manifest_path_matches(self, tmp_path, plenty_of_cpus):
        off = execute(tmp_path, "off", max_workers=1, trace_cache="off")
        pooled = execute(
            tmp_path, "pool", max_workers=3, mp_context=FORK, trace_cache="memory"
        )
        assert canonical(pooled) == canonical(off)
        assert shm_residue() == []


class TestFingerprints:
    def test_controller_with_store_matches_pre_hardening(self):
        store = TraceStore(None, mode="memory")
        for mech, expected in PRE_HARDENING_FINGERPRINTS.items():
            machine = build_machine(the_mix(), SC, trace_store=store)
            ctl = CMMController(
                SimulatedPlatform(machine),
                make_policy(mech),
                epoch_cfg=EpochConfig(
                    exec_units=SC.exec_units, sample_units=SC.sample_units
                ),
            )
            assert fingerprint(ctl.run(SC.n_epochs)) == expected, mech

    def test_no_fallbacks_at_standard_scales(self):
        # Every chunk a mechanism run requests is 32-aligned and within
        # the materialized bound — the zero-copy path never bails out.
        store = TraceStore(None, mode="memory")
        machine = build_machine(the_mix(), SC, trace_store=store)
        ctl = CMMController(
            SimulatedPlatform(machine),
            make_policy("cmm-a"),
            epoch_cfg=EpochConfig(exec_units=SC.exec_units, sample_units=SC.sample_units),
        )
        ctl.run(SC.n_epochs)
        for core in range(the_mix().n_cores):
            trace = machine.cores[core].trace
            assert trace.fallbacks == 0, core
            assert trace.pos <= mechanism_trace_length(SC)


class TestCacheKeysUntouched:
    def test_keys_match_pre_plane_captures(self):
        mix = the_mix()
        assert (
            PlannedRun(KIND_MECHANISM, SC, mix=mix, mechanism="cmm-a").key()
            == PRE_HARDENING_KEYS["mech-cmm-a"]
        )
        assert (
            PlannedRun(KIND_ALONE, SC, bench="410.bwaves").key()
            == PRE_HARDENING_KEYS["alone-410.bwaves"]
        )
        assert (
            PlannedRun(KIND_PROFILE, SC, bench="453.povray", way_sweep=(1, 2)).key()
            == PRE_HARDENING_KEYS["profile-453.povray"]
        )

    def test_trace_cache_mode_not_in_key_payload(self, monkeypatch):
        run = PlannedRun(KIND_MECHANISM, SC, mix=the_mix(), mechanism="cmm-a")
        key = run.key()
        for mode in ("off", "memory", "disk"):
            monkeypatch.setenv("REPRO_TRACE_CACHE", mode)
            assert run.key() == key, mode

    def test_cached_result_replays_across_modes(self, tmp_path):
        # A result computed with the plane on replays from the result
        # cache in a plane-off session (and vice versa): same keys.
        on = ExperimentSession(
            scale=SC, cache_dir=tmp_path / "shared", max_workers=1,
            trace_cache="memory", run_timeout=120,
        )
        try:
            first = on.execute(the_plan())
        finally:
            on.close()
        off = ExperimentSession(
            scale=SC, cache_dir=tmp_path / "shared", max_workers=1,
            trace_cache="off", run_timeout=120,
        )
        try:
            second = off.execute(the_plan())
            assert all(r.cached for r in off.records)
        finally:
            off.close()
        assert canonical(first) == canonical(second)
