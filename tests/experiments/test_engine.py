"""The parallel experiment engine: keys, cache, sessions.

Uses a reduced scale so the whole module stays fast; the
parallel-determinism test spins up a real two-process pool.
"""

import dataclasses
import json
import warnings

import numpy as np
import pytest

import repro
from repro.core.trace import TRACE_SCHEMA_VERSION, traces_to_dicts
from repro.experiments.config import TINY
from repro.experiments.engine import (
    KIND_ALONE,
    KIND_MECHANISM,
    SCHEMA_VERSION,
    ExperimentSession,
    PlannedRun,
    ResultCache,
    RunSpec,
    default_cache_dir,
    default_session,
    default_workers,
    set_default_session,
)
from repro.workloads.mixes import make_mixes

SC = dataclasses.replace(
    TINY, name="unit", quantum=256, sample_units=256, exec_units=2048, alone_accesses=4096
)


@pytest.fixture(scope="module")
def mix():
    return make_mixes("pref_agg", 1, seed=2019)[0]


@pytest.fixture
def session(tmp_path):
    return ExperimentSession(cache_dir=tmp_path / "cache", max_workers=1)


class TestKeys:
    def test_key_is_deterministic(self, mix):
        a = PlannedRun(KIND_MECHANISM, SC, mix=mix, mechanism="pt")
        b = PlannedRun(KIND_MECHANISM, SC, mix=mix, mechanism="pt")
        assert a.key() == b.key()

    def test_key_varies_with_mechanism_and_scale(self, mix):
        base = PlannedRun(KIND_MECHANISM, SC, mix=mix, mechanism="pt")
        other_mech = PlannedRun(KIND_MECHANISM, SC, mix=mix, mechanism="dunn")
        other_sc = PlannedRun(
            KIND_MECHANISM, dataclasses.replace(SC, exec_units=4096), mix=mix, mechanism="pt"
        )
        assert len({base.key(), other_mech.key(), other_sc.key()}) == 3

    def test_scale_name_is_not_identity(self, mix):
        """Two scales with identical simulation parameters share keys."""
        renamed = dataclasses.replace(SC, name="renamed", workloads_per_category=7)
        a = PlannedRun(KIND_MECHANISM, SC, mix=mix, mechanism="pt")
        b = PlannedRun(KIND_MECHANISM, renamed, mix=mix, mechanism="pt")
        assert a.key() == b.key()

    def test_cache_key_fields(self):
        d = SC.cache_key()
        assert "name" not in d and "workloads_per_category" not in d and "seed" not in d
        assert d["exec_units"] == SC.exec_units
        assert json.dumps(d, sort_keys=True)  # JSON-stable

    def test_key_payload_carries_schema_and_machine(self, mix):
        payload = PlannedRun(KIND_ALONE, SC, bench="429.mcf").key_payload()
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["machine"]["n_cores"] == 8


class TestResultCache:
    def test_roundtrip_and_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ab" * 32) is None
        cache.put("ab" * 32, {"schema": SCHEMA_VERSION, "kind": "alone", "payload": {"ipc": 1.5}})
        rec = cache.get("ab" * 32)
        assert rec["payload"]["ipc"] == 1.5
        assert cache.misses == 1 and cache.hits == 1

    def test_persists_across_instances(self, tmp_path):
        ResultCache(tmp_path).put(
            "cd" * 32, {"schema": SCHEMA_VERSION, "kind": "alone", "payload": {"ipc": 2.0}}
        )
        fresh = ResultCache(tmp_path)
        assert fresh.get("cd" * 32)["payload"]["ipc"] == 2.0

    def test_schema_mismatch_misses(self, tmp_path):
        ResultCache(tmp_path).put(
            "ef" * 32, {"schema": SCHEMA_VERSION + 1, "kind": "alone", "payload": {"ipc": 2.0}}
        )
        assert ResultCache(tmp_path).get("ef" * 32) is None

    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("12" * 32, {"schema": SCHEMA_VERSION, "kind": "alone", "payload": {}})
        cache.put("34" * 32, {"schema": SCHEMA_VERSION, "kind": "mechanism", "payload": {}})
        s = cache.stats()
        assert s.entries == 2 and s.bytes > 0
        assert s.by_kind == {"alone": 1, "mechanism": 1}
        assert cache.clear() == 2
        assert ResultCache(tmp_path).stats().entries == 0

    def test_memory_only(self):
        cache = ResultCache(None)
        cache.put("56" * 32, {"schema": SCHEMA_VERSION, "kind": "alone", "payload": {"ipc": 1.0}})
        assert cache.get("56" * 32)["payload"]["ipc"] == 1.0
        assert cache.stats().root is None

    def test_put_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"schema": SCHEMA_VERSION, "kind": "alone", "payload": {}})
        leftovers = [p for p in tmp_path.rglob("*") if p.is_file() and p.suffix != ".json"]
        assert leftovers == []

    def test_interrupted_put_leaves_old_entry_intact(self, tmp_path, monkeypatch):
        key = "ab" * 32
        cache = ResultCache(tmp_path)
        cache.put(key, {"schema": SCHEMA_VERSION, "kind": "alone", "payload": {"ipc": 1.0}})

        def explode(*a, **k):
            raise KeyboardInterrupt

        monkeypatch.setattr("json.dumps", explode)
        with pytest.raises(KeyboardInterrupt):
            cache.put(key, {"schema": SCHEMA_VERSION, "kind": "alone", "payload": {"ipc": 9.0}})
        monkeypatch.undo()
        # The on-disk entry is the old one, whole, and no temp remains.
        fresh = ResultCache(tmp_path)
        assert fresh.get(key)["payload"]["ipc"] == 1.0
        assert [p for p in tmp_path.rglob("*.tmp")] == []

    def test_corrupt_entry_is_quarantined(self, tmp_path):
        key = "ab" * 32
        ResultCache(tmp_path).put(key, {"schema": SCHEMA_VERSION, "kind": "alone", "payload": {}})
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text('{"schema": 1, "kind": "alo')  # torn write
        cache = ResultCache(tmp_path)
        with pytest.warns(RuntimeWarning, match="quarantined corrupt cache entry"):
            assert cache.get(key) is None
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()
        assert cache.corrupt == 1
        s = cache.stats()
        assert s.entries == 0 and s.corrupt == 1

    def test_corrupt_warning_fires_once_per_session(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = ["ab" * 32, "cd" * 32]
        for key in keys:
            cache.put(key, {"schema": SCHEMA_VERSION, "kind": "alone", "payload": {}})
            (tmp_path / key[:2] / f"{key}.json").write_text("not json")
        cache._mem.clear()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for key in keys:
                assert cache.get(key) is None
        assert sum("quarantined" in str(w.message) for w in caught) == 1
        assert cache.corrupt == 2

    def test_clear_removes_quarantined_entries(self, tmp_path):
        key = "ab" * 32
        cache = ResultCache(tmp_path)
        cache.put(key, {"schema": SCHEMA_VERSION, "kind": "alone", "payload": {}})
        (tmp_path / key[:2] / f"{key}.json").write_text("garbage")
        cache._mem.clear()
        with pytest.warns(RuntimeWarning):
            cache.get(key)
        assert cache.clear() >= 1
        assert list(tmp_path.rglob("*.corrupt")) == []


class TestSessionCaching:
    def test_hit_after_miss(self, session, mix):
        a = session.run(mix, "baseline", SC)
        b = session.run(mix, "baseline", SC)
        np.testing.assert_array_equal(a.ipc, b.ipc)
        assert [r.cached for r in session.records] == [False, True]

    def test_disk_replay_is_bit_identical(self, tmp_path, mix):
        first = ExperimentSession(cache_dir=tmp_path / "c", max_workers=1)
        fresh = first.run(mix, "pt", SC)
        second = ExperimentSession(cache_dir=tmp_path / "c", max_workers=1)
        replay = second.run(mix, "pt", SC)
        assert second.records[0].cached
        np.testing.assert_array_equal(fresh.ipc, replay.ipc)
        np.testing.assert_array_equal(fresh.stats.totals, replay.stats.totals)
        assert fresh.stats.wall_cycles == replay.stats.wall_cycles

    def test_param_change_invalidates(self, session, mix):
        session.run(mix, "baseline", SC)
        session.run(mix, "baseline", dataclasses.replace(SC, exec_units=1024))
        assert [r.cached for r in session.records] == [False, False]

    def test_machine_param_change_invalidates(self, session, mix):
        session.run(mix, "baseline", SC)
        session.run(mix, "baseline", dataclasses.replace(SC, llc_scale=32))
        assert [r.cached for r in session.records] == [False, False]

    def test_alone_runs_cached(self, session):
        a = session.alone_ipc("410.bwaves", SC)
        b = session.alone_ipc("410.bwaves", SC)
        assert a == b > 0
        assert [r.cached for r in session.records] == [False, True]

    def test_policy_objects_bypass_cache(self, session, mix):
        from repro.core.dunn import DunnPolicy

        r = session.run(mix, DunnPolicy(), SC)
        assert r.mechanism == "dunn"
        assert session.records == []  # never planned, never cached

    def test_progress_callback(self, tmp_path, mix):
        seen = []
        s = ExperimentSession(
            cache_dir=tmp_path / "c", max_workers=1,
            progress=lambda rec, done, total: seen.append((rec.label, done, total)),
        )
        s.alone_ipcs(mix, SC)
        uniq = len(dict.fromkeys(mix.benchmarks))
        assert len(seen) == uniq
        assert seen[-1][1:] == (uniq, uniq)


class TestRunSpec:
    def test_expand_dedups(self, mix):
        spec = RunSpec(mechanisms=("pt", "pt", "baseline"), mixes=(mix, mix))
        plan = spec.expand(SC)
        keys = [p.key() for p in plan]
        assert len(keys) == len(plan)
        mech_runs = [p for p in plan if p.kind == KIND_MECHANISM]
        assert {p.mechanism for p in mech_runs} == {"baseline", "pt"}
        assert len(mech_runs) == 4  # (mix repeated) x {baseline, pt}, pre-dedup by execute
        alone = [p for p in plan if p.kind == KIND_ALONE]
        assert len(alone) == len(dict.fromkeys(mix.benchmarks))

    def test_categories_expansion(self):
        spec = RunSpec(mechanisms=("pt",), categories=("pref_unfri",), workloads_per_category=2)
        mixes = spec.resolve_mixes(SC)
        assert [m.category for m in mixes] == ["pref_unfri", "pref_unfri"]

    def test_execute_collapses_duplicates(self, session, mix):
        spec = RunSpec(mechanisms=("pt",), mixes=(mix, mix), include_alone=False)
        session.execute(spec.expand(SC))
        assert len(session.records) == 2  # baseline + pt, once each

    def test_seed_axis_generates_mixes_per_seed(self):
        spec = RunSpec(mechanisms=("pt",), categories=("pref_agg",),
                       workloads_per_category=1, seeds=(2019, 2020))
        mixes = spec.resolve_mixes(SC)
        assert len(mixes) == 2
        # make_mixes derives each mix's seed from the axis seed, so the
        # two draws are distinct (and so are their content keys).
        assert mixes[0].seed != mixes[1].seed
        assert mixes[0].name == mixes[1].name == "pref_agg-00"

    def test_seed_axis_keys_are_distinct(self):
        spec = RunSpec(mechanisms=("pt",), categories=("pref_agg",),
                       workloads_per_category=1, seeds=(2019, 2020),
                       include_alone=False, include_baseline=False)
        plan = spec.expand(SC)
        assert len(plan) == 2
        assert plan[0].key() != plan[1].key()  # mix seed is in the content key

    def test_seed_axis_dedups_seed_independent_runs(self):
        # Alone runs depend only on the benchmark: if both seeds draw the
        # same benchmarks, the plan carries each alone run once.
        one = RunSpec(mechanisms=("pt",), categories=("pref_agg",),
                      workloads_per_category=1, seeds=(2019,)).expand(SC)
        two = RunSpec(mechanisms=("pt",), categories=("pref_agg",),
                      workloads_per_category=1, seeds=(2019, 2019)).expand(SC)
        alone = [p for p in two if p.kind == KIND_ALONE]
        assert alone == [p for p in one if p.kind == KIND_ALONE]

    def test_default_seed_axis_is_the_scale_seed(self):
        base = RunSpec(mechanisms=("pt",), categories=("pref_agg",),
                       workloads_per_category=1)
        explicit = dataclasses.replace(base, seeds=(SC.seed,))
        assert [m.name for m in base.resolve_mixes(SC)] == \
               [m.name for m in explicit.resolve_mixes(SC)]

    def test_seeds_with_explicit_mixes_rejected(self, mix):
        spec = RunSpec(mechanisms=("pt",), mixes=(mix,), seeds=(1, 2))
        with pytest.raises(ValueError, match="seeds"):
            spec.resolve_mixes(SC)


class TestParallelDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self, tmp_path, mix, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 4)  # defeat the 1-CPU clamp
        serial = ExperimentSession(cache_dir=tmp_path / "s", max_workers=1)
        parallel = ExperimentSession(cache_dir=tmp_path / "p", max_workers=2)
        ev_s = serial.evaluate(mix, ("pt",), SC)
        ev_p = parallel.evaluate(mix, ("pt",), SC)
        assert not any(r.cached for r in parallel.records)
        np.testing.assert_array_equal(ev_s.alone_ipc, ev_p.alone_ipc)
        np.testing.assert_array_equal(ev_s.baseline.stats.totals, ev_p.baseline.stats.totals)
        assert ev_s.metrics == ev_p.metrics


class TestEvaluate:
    def test_matches_fresh_session(self, session, mix):
        ev = session.evaluate(mix, ("pt",), SC)
        other = ExperimentSession(cache_dir=None, max_workers=1).evaluate(mix, ("pt",), SC)
        assert ev.metrics == other.metrics

    def test_injected_alone_cache_is_used(self, session, mix):
        from repro.experiments.runner import AloneCache

        cache = AloneCache()
        ev = session.evaluate(mix, ("pt",), SC, alone_cache=cache)
        assert len(cache._cache) == len(dict.fromkeys(mix.benchmarks))
        np.testing.assert_array_equal(ev.alone_ipc, cache.ipcs_for(mix, SC))

    def test_fairness_columns_ride_along(self, session, mix):
        from repro.analysis.stats import fair_slowdown, unfairness

        ev = session.evaluate(mix, ("pt",), SC)
        for mech in ("baseline", "pt"):
            m = ev.metrics[mech]
            assert set(m) >= {"hm_ipc", "fair_slowdown", "unfairness"}
            assert m["unfairness"] >= 1.0
        base = ev.metrics["baseline"]
        assert base["fair_slowdown"] == fair_slowdown(ev.alone_ipc, ev.baseline.ipc)
        assert base["unfairness"] == unfairness(ev.alone_ipc, ev.baseline.ipc)

    def test_sweep_assembles_all_mixes(self, session):
        evals = session.sweep(("pt",), SC, categories=("pref_no_agg",), workloads_per_category=1)
        assert len(evals) == 1
        assert "pt" in evals[0].metrics and "baseline" in evals[0].metrics


class TestShimsRemoved:
    """The 1.x pre-engine API is gone in 2.0 (see CHANGELOG.md)."""

    @pytest.mark.parametrize(
        "name", ["run_mechanism", "run_policy_object", "evaluate_workload", "ALONE_CACHE"]
    )
    def test_legacy_names_absent(self, name):
        from repro.experiments import runner

        with pytest.raises(AttributeError):
            getattr(runner, name)
        assert not hasattr(repro, name)


class TestDefaults:
    def test_default_cache_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert default_cache_dir() == tmp_path / "env-cache"

    def test_default_workers_env(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 4)
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
        with pytest.raises(ValueError):
            default_workers()

    def test_env_workers_clamped_to_cpu_count(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 4)
        monkeypatch.setenv("REPRO_WORKERS", "64")
        with pytest.warns(RuntimeWarning, match="REPRO_WORKERS=64.*clamping to 4"):
            assert default_workers() == 4

    def test_session_workers_clamped_to_cpu_count(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 4)
        with pytest.warns(RuntimeWarning, match="max_workers=64.*clamping to 4"):
            session = ExperimentSession(cache_dir=None, max_workers=64)
        assert session.max_workers == 4

    def test_default_session_singleton(self):
        set_default_session(None)
        assert default_session() is default_session()
        mine = ExperimentSession(cache_dir=None)
        set_default_session(mine)
        try:
            assert default_session() is mine
        finally:
            set_default_session(None)

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSession(cache_dir=None, max_workers=0)


class TestProfiles:
    def test_profile_cached_and_rehydrated(self, session):
        sc = dataclasses.replace(SC, profile_accesses=4096)
        a = session.profile("453.povray", sc, way_sweep=(1, 2))
        b = session.profile("453.povray", sc, way_sweep=(1, 2))
        assert [r.cached for r in session.records] == [False, True]
        assert a.ipc_on == b.ipc_on > 0
        assert set(a.ipc_by_ways) == {1, 2}
        assert isinstance(next(iter(b.ipc_by_ways)), int)

    def test_way_sweep_part_of_key(self, session):
        sc = dataclasses.replace(SC, profile_accesses=4096)
        session.profile("453.povray", sc)
        session.profile("453.povray", sc, way_sweep=(1,))
        assert [r.cached for r in session.records] == [False, False]


class TestTracePersistence:
    """Decision traces ride beside cached results, never inside them."""

    def test_sidecar_written_beside_entry(self, session, mix):
        stats = session.run(mix, "cmm-a", SC).stats
        assert stats.traces and stats.traces[0].policy == "cmm-a"
        key = PlannedRun(KIND_MECHANISM, SC, mix=mix, mechanism="cmm-a").key()
        sidecar = session.cache.root / key[:2] / f"{key}.traces.json"
        assert sidecar.is_file()
        record = json.loads(sidecar.read_text())
        assert record["schema"] == TRACE_SCHEMA_VERSION
        assert len(record["traces"]) == SC.n_epochs

    def test_cached_replay_rehydrates_traces(self, session, mix):
        first = session.run(mix, "cmm-a", SC).stats
        second = session.run(mix, "cmm-a", SC).stats
        assert [r.cached for r in session.records] == [False, True]
        assert traces_to_dicts(second.traces) == traces_to_dicts(first.traces)

    def test_sidecars_invisible_to_stats_and_counted_out_of_clear(self, session, mix):
        session.run(mix, "cmm-a", SC)
        s = session.cache.stats()
        assert s.entries == 1 and s.by_kind == {"mechanism": 1}
        assert session.cache.clear() == 1  # sidecars deleted but not counted
        assert list(session.cache.root.glob("*/*.traces.json")) == []

    def test_stale_trace_schema_ignored(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_traces("ab" * 32, [{"anything": 1}])
        sidecar = tmp_path / "ab" / (("ab" * 32) + ".traces.json")
        stale = json.loads(sidecar.read_text())
        stale["schema"] = TRACE_SCHEMA_VERSION + 1
        sidecar.write_text(json.dumps(stale))
        assert ResultCache(tmp_path).get_traces("ab" * 32) is None

    def test_corrupt_sidecar_ignored(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_traces("cd" * 32, [{"anything": 1}])
        path = tmp_path / "cd" / (("cd" * 32) + ".traces.json")
        path.write_text("{not json")
        assert ResultCache(tmp_path).get_traces("cd" * 32) is None

    def test_traces_recomputed_when_sidecar_missing(self, session, mix):
        before = session.traces(mix, "cmm-a", SC)
        key = PlannedRun(KIND_MECHANISM, SC, mix=mix, mechanism="cmm-a").key()
        sidecar = session.cache.root / key[:2] / f"{key}.traces.json"
        sidecar.unlink()
        fresh = ExperimentSession(cache_dir=session.cache.root, max_workers=1)
        after = fresh.traces(mix, "cmm-a", SC)
        assert sidecar.is_file()  # recompute re-persisted the sidecar
        assert traces_to_dicts(after) == traces_to_dicts(before)

    def test_payload_has_no_trace_key(self, session, mix):
        session.run(mix, "cmm-a", SC)
        key = PlannedRun(KIND_MECHANISM, SC, mix=mix, mechanism="cmm-a").key()
        assert "traces" not in session.cache.get(key)["payload"]
