"""Ablation: sampling-interval length (paper Sec. IV-B).

The paper reports that several (epoch, interval) length pairs give
similar results (they settle on a 50:1 ratio).  We run PT with the
sampling interval halved and doubled and check the outcome is stable.
"""

import numpy as np

from repro.core.throttling import PrefetchThrottlingPolicy
from repro.experiments.engine import default_session, run
from repro.metrics.speedup import harmonic_speedup
from repro.workloads.mixes import make_mixes


def _sweep(scale):
    mixes = make_mixes("pref_unfri", scale.workloads_per_category, seed=scale.seed)
    means = {}
    for mult in (0.5, 1.0, 2.0):
        units = max(128, int(scale.sample_units * mult))
        vals = []
        for mix in mixes:
            alone = default_session().alone_ipcs(mix, scale)
            base = run(mix, "baseline", scale)
            res = run(
                mix, PrefetchThrottlingPolicy(), scale,
                label=f"pt@{units}", sample_units=units,
            )
            vals.append(harmonic_speedup(res.ipc, alone) / harmonic_speedup(base.ipc, alone))
        means[mult] = float(np.mean(vals))
    return means


def test_sampling_interval_ablation(run_once, scale):
    means = run_once(_sweep, scale)
    print()
    for mult, v in means.items():
        print(f"  sample interval x{mult}: normalized HS {v:.3f}")
    # all three lengths improve over baseline ...
    for v in means.values():
        assert v > 1.0
    # ... and agree within a few percent (the paper's robustness claim)
    assert max(means.values()) - min(means.values()) < 0.06
