"""Fig. 11: the coordinated mechanisms CMM-a / CMM-b / CMM-c."""

from conftest import print_category_means

from repro.experiments.figures import fig11_cmm


def test_fig11_cmm(run_once, scale, store):
    d = run_once(fig11_cmm, scale, store)
    print_category_means(d)
    means = d["category_means"]
    # paper shape: CMM-a and CMM-c beat CMM-b on the categories with
    # unfriendly aggressors (CMM-b leaves their demand interference in
    # the shared cache).
    for cat in ("pref_agg", "pref_unfri"):
        assert means[cat]["cmm-a"] >= means[cat]["cmm-b"] - 0.005, cat
        assert means[cat]["cmm-c"] >= means[cat]["cmm-b"] - 0.005, cat
    # real gains on aggressive categories
    assert means["pref_agg"]["cmm-a"] > 1.03
    assert means["pref_unfri"]["cmm-a"] > 1.05
    # Pref Fri and Pref No Agg degenerate to CP-style behaviour: the
    # three variants perform essentially the same.
    for cat in ("pref_fri", "pref_no_agg"):
        vals = [means[cat][m] for m in ("cmm-a", "cmm-b", "cmm-c")]
        assert max(vals) - min(vals) < 0.03, cat
