"""Regenerate ``BENCH_simulator.json`` — simulator core-throughput record.

Measures the core-throughput scenarios from
``bench_simulator_speed.py`` (accesses simulated per second) for the
``fast`` and ``reference`` engines and writes the results, per-scenario
speedups and their geometric mean to ``BENCH_simulator.json`` at the
repository root.  Each scenario also records trace-*generation*
throughput separately, so the split between generation and kernel time
is visible (``trace_share_of_fast`` is the fraction of a fast-engine
run spent producing trace chunks).

Methodology: scenarios are measured best-of-``--rounds`` with the
engines *interleaved* round by round, so transient machine load hits
every engine alike instead of biasing whichever ran last.  Numbers are
this-host absolute throughputs — compare ratios, not raw values,
across machines.

Refresh::

    PYTHONPATH=src python benchmarks/emit_bench_json.py

To also (re)measure the pre-fast-kernel baseline live, point
``--baseline-src`` at a checkout of the commit preceding the fast
kernel (e.g. ``git worktree add /tmp/prepr <commit>`` then
``--baseline-src /tmp/prepr/src``).  Without it, any baseline figures
in an existing ``BENCH_simulator.json`` are carried forward with their
original provenance note.

``--engine`` instead measures the *experiment engine* and writes
``BENCH_engine.json``.  Two families of scenarios:

* **mechanism sweeps** — one full-machine mix evaluated under several
  mechanisms with the trace plane (:mod:`repro.sim.tracestore`) on vs.
  off; the plane-off lane is the pre-trace-plane execution path (every
  run regenerates its traces live);
* **batch sweeps** — a wide static CAT sweep of one mix (every
  way-split x two CLOS layouts, the Fig. 3/Table I shape) executed by
  ``repro.simulate_batch`` on the multi-run batch engine vs. per-run
  scalar fast machines.  Both lanes share one warm in-memory trace
  store, so the measured ratio isolates the batch kernel (lane
  deduplication + the lockstep grouped LLC), not trace reuse.  The
  bench also asserts the two lanes' results are bit-identical and
  records that in the payload;
* **dynamic mechanism sweeps** — every registered policy driven over
  one mix in masked lockstep (``GroupedCore`` + grouped LLC, runs
  diverging per epoch) vs. per-run scalar fast machines, bit-identity
  asserted every round (``batch_dynamic_sweeps``).

Lanes are interleaved round by round like the simulator benches.
"""

from __future__ import annotations

import argparse
import importlib
import json
import math
import os
import platform
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_simulator_speed import CORE_SCENARIOS  # noqa: E402

QUANTUM = 512


def _host_info() -> dict:
    """One host/toolchain block shared by every bench payload.

    Records the numba version (or null) because the ``native`` lanes
    only engage when numba imports — absolute numbers from hosts
    without it are pure-NumPy figures.
    """
    numba_version = None
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.sim import nativekernels

        numba_version = nativekernels.NUMBA_VERSION
    except Exception:
        pass
    finally:
        sys.path.pop(0)
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "numba": numba_version,
    }


class _native_env:
    """Pin ``$REPRO_NATIVE_KERNELS`` for one lane, resetting the tier's
    cached decisions on entry and exit so lanes cannot leak state."""

    def __init__(self, mode: str) -> None:
        self.mode = mode

    def __enter__(self):
        from repro.sim import nativekernels

        self.nk = nativekernels
        self.prev = os.environ.get(nativekernels.ENV_VAR)
        os.environ[nativekernels.ENV_VAR] = self.mode
        nativekernels._reset_for_tests()
        return nativekernels

    def __exit__(self, *exc):
        if self.prev is None:
            os.environ.pop(self.nk.ENV_VAR, None)
        else:
            os.environ[self.nk.ENV_VAR] = self.prev
        self.nk._reset_for_tests()
        return False


def _load_stack(src_root: str):
    """(Re)import the simulator from ``src_root``, dropping cached modules."""
    for mod in [m for m in sys.modules if m.split(".")[0] == "repro"]:
        del sys.modules[mod]
    sys.path.insert(0, src_root)
    try:
        machine_mod = importlib.import_module("repro.sim.machine")
        params_mod = importlib.import_module("repro.sim.params")
        spec_mod = importlib.import_module("repro.workloads.speclike")
    finally:
        sys.path.pop(0)
    return machine_mod.Machine, params_mod.scaled_params, spec_mod.build_trace


def _throughput(src_root: str, engine: str | None, benches: list[str], n: int) -> float:
    Machine, scaled_params, build_trace = _load_stack(src_root)
    params = scaled_params(16)
    kwargs = {} if engine is None else {"engine": engine}
    m = Machine(params, quantum=512, **kwargs)
    for core, bench in enumerate(benches):
        m.attach_trace(
            core,
            build_trace(
                bench,
                llc_lines=params.llc.lines,
                base_line=m.core_base_line(core),
                seed=core,
            ),
        )
    t0 = time.perf_counter()
    m.run_accesses(n)
    return n * len(benches) / (time.perf_counter() - t0)


def _trace_gen_throughput(src_root: str, benches: list[str], n: int) -> float:
    """Trace generation alone (no kernel), chunked at the quantum."""
    _Machine, scaled_params, build_trace = _load_stack(src_root)
    params = scaled_params(16)
    import importlib as _il

    stride = _il.import_module("repro.sim.machine").CORE_ADDRESS_STRIDE_LINES
    t0 = time.perf_counter()
    for core, bench in enumerate(benches):
        t = build_trace(
            bench, llc_lines=params.llc.lines, base_line=core * stride, seed=core
        )
        for _ in range(n // QUANTUM):
            t.chunk(QUANTUM)
    return n * len(benches) / (time.perf_counter() - t0)


def _geomean(vals: list[float]) -> float | None:
    vals = [v for v in vals if v]
    if not vals:
        return None
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


# ------------------------------------------------------- engine sweep

ENGINE_MECHANISMS = ("baseline", "pt", "dunn", "cmm-a")


def _engine_sweep_times(
    trace_cache: str, tmp_root: Path, tag: str, store=None
) -> dict[str, float]:
    """Cold per-mechanism wall seconds for one full-machine mix.

    One session per lane per round — the result cache starts empty
    (every run simulates).  The plane-on lane replays a pre-warmed
    shared in-memory ``store`` (the plane's production steady state:
    the store outlives sessions), so every mechanism measures pure
    replay rather than charging materialization to whichever
    mechanism happens to run while the store is still cold.
    """
    from repro.experiments.engine import ExperimentSession
    from repro.workloads.mixes import make_mixes

    from bench_simulator_speed import ENGINE_SC

    mix = make_mixes("pref_agg", 1, seed=2019)[0]
    session = ExperimentSession(
        cache_dir=tmp_root / tag, max_workers=1, trace_cache=trace_cache
    )
    if store is not None:
        session.trace_store = store
    times: dict[str, float] = {}
    try:
        for mech in ENGINE_MECHANISMS:
            t0 = time.perf_counter()
            session.run(mix, mech, ENGINE_SC)
            times[mech] = time.perf_counter() - t0
    finally:
        if store is not None:
            session.trace_store = None  # shared store outlives the session
        session.close()
    return times


BATCH_CATEGORIES = ("pref_agg", "pref_unfri")
BATCH_ACCESSES = 24576


def _batch_sweep_specs(mix, sc):
    """Every CAT way-split x two CLOS layouts, prefetchers on — the
    widest static sweep the experiment layer runs (Fig. 3 shape)."""
    from repro.experiments.batch import BatchRunSpec

    w = sc.params().llc.ways
    alternating = tuple(c % 2 for c in range(mix.n_cores))
    halved = tuple(0 if c < mix.n_cores // 2 else 1 for c in range(mix.n_cores))
    specs = []
    for k in range(1, w):
        cbm0 = (1 << k) - 1
        cbm1 = ((1 << w) - 1) ^ cbm0
        for layout in (alternating, halved):
            specs.append(
                BatchRunSpec(
                    mix=mix,
                    n_accesses=BATCH_ACCESSES,
                    masks=(0x0,) * mix.n_cores,
                    clos_cbms=((0, cbm0), (1, cbm1)),
                    core_clos=layout,
                )
            )
    return specs


def _batch_scalar_run(mix, spec, sc, store):
    from repro.experiments.runner import build_machine

    # Pin the scalar reference lane to the fast engine so auto
    # resolution can't silently upgrade it to the native tier on
    # numba hosts (that would mislabel the baseline timing).
    m = build_machine(mix, sc, trace_store=store, engine="fast")
    for cpu, mask in enumerate(spec.masks):
        m.prefetch_msr.set_mask(cpu, mask)
    for clos, cbm in spec.clos_cbms:
        m.cat.set_cbm(clos, cbm)
    for cpu, clos in enumerate(spec.core_clos):
        m.cat.assign_core(cpu, clos)
    snap = m.pmu.snapshot()
    m.run_accesses(spec.n_accesses)
    return m.pmu.delta_since(snap)


def _measure_batch_sweeps(rounds: int) -> dict[str, dict]:
    from repro.experiments.batch import simulate_batch
    from repro.experiments.config import ScaleConfig
    from repro.sim.tracestore import TraceStore
    from repro.workloads.mixes import make_mixes

    sc = ScaleConfig(name="bench-batch", llc_scale=16, quantum=512)
    store = TraceStore(None, mode="memory")
    out: dict[str, dict] = {}
    for cat in BATCH_CATEGORIES:
        mix = make_mixes(cat, 1, seed=2019)[0]
        specs = _batch_sweep_specs(mix, sc)
        best_batch = best_scalar = float("inf")
        identical = True
        for _ in range(rounds):
            t0 = time.perf_counter()
            batch = simulate_batch(specs, sc, trace_store=store)
            best_batch = min(best_batch, time.perf_counter() - t0)
            t0 = time.perf_counter()
            scalar = [_batch_scalar_run(mix, s, sc, store) for s in specs]
            best_scalar = min(best_scalar, time.perf_counter() - t0)
            identical = identical and all(
                (rs.totals == s.deltas).all() and rs.wall_cycles == s.wall_cycles
                for rs, s in zip(batch, scalar)
            )
        out[cat] = {
            "runs": len(specs),
            "accesses_per_core": BATCH_ACCESSES,
            "scalar_s": round(best_scalar, 3),
            "batch_s": round(best_batch, 3),
            "speedup": round(best_scalar / best_batch, 2),
            "bit_identical": identical,
        }
        print(
            f"batch {cat}: R={len(specs)} scalar={best_scalar:.2f}s "
            f"batch={best_batch:.2f}s x{best_scalar / best_batch:.2f} "
            f"identical={identical}"
        )
    return out


DYNAMIC_CATEGORIES = ("pref_agg", "pref_unfri", "pref_fri")
DYNAMIC_EXEC_UNITS = 49152


def _measure_dynamic_sweeps(rounds: int) -> dict[str, dict]:
    """Mechanism sweeps (every registered policy over one mix) batched in
    masked lockstep vs. per-run scalar fast machines.

    Unlike the static ``batch_sweeps`` the runs here are
    controller-driven and *diverge* — each policy flips prefetch masks
    and CAT every epoch — so this lane measures the dynamic lockstep
    kernel (GroupedCore + grouped LLC + span-batched serves), not the
    lane-tree replay path.  Both lanes share one warm in-memory trace
    store; bit-identity is asserted per run every round.  Capped at
    best-of-3: each lane is tens of seconds per round.
    """
    from repro.core.policies import POLICIES
    from repro.experiments.batch import (
        _lockstep_mechanisms,
        _run_mechanism,
        build_batch_kernel,
    )
    from repro.experiments.config import ScaleConfig
    from repro.experiments.runner import build_machine
    from repro.sim.tracestore import TraceStore
    from repro.workloads.mixes import make_mixes

    sc = ScaleConfig(
        name="bench-dynamic", llc_scale=16, n_cores=4, quantum=512,
        sample_units=512, exec_units=DYNAMIC_EXEC_UNITS, n_epochs=1,
    )
    store = TraceStore(None, mode="memory")
    mechs = list(POLICIES)
    rounds = max(1, min(rounds, 3))
    out: dict[str, dict] = {}
    for cat in DYNAMIC_CATEGORIES:
        mix = make_mixes(cat, 1, n_cores=4, seed=2019)[0]
        build_batch_kernel(mix, sc, store)  # warm the store off the clock
        best_batch = best_scalar = float("inf")
        identical = True
        for _ in range(rounds):
            t0 = time.perf_counter()
            scalar = [
                _run_mechanism(
                    build_machine(mix, sc, trace_store=store, engine="fast"), m, sc
                )
                for m in mechs
            ]
            best_scalar = min(best_scalar, time.perf_counter() - t0)
            t0 = time.perf_counter()
            kernel = build_batch_kernel(mix, sc, store)
            batch = _lockstep_mechanisms(kernel, mechs, sc)
            best_batch = min(best_batch, time.perf_counter() - t0)
            identical = identical and all(
                (b.totals == s.totals).all() and b.wall_cycles == s.wall_cycles
                for b, s in zip(batch, scalar)
            )
        assert identical, f"dynamic sweep {cat}: batch diverged from scalar"
        out[cat] = {
            "mechanisms": len(mechs),
            "exec_units_per_epoch": DYNAMIC_EXEC_UNITS,
            "scalar_s": round(best_scalar, 3),
            "batch_s": round(best_batch, 3),
            "speedup": round(best_scalar / best_batch, 2),
            "bit_identical": identical,
        }
        print(
            f"dynamic {cat}: R={len(mechs)} scalar={best_scalar:.2f}s "
            f"batch={best_batch:.2f}s x{best_scalar / best_batch:.2f} "
            f"identical={identical}"
        )
    return out


NATIVE_CATEGORIES = ("pref_agg", "pref_unfri")


def _measure_native_sweeps(rounds: int) -> dict:
    """The compiled kernel tier vs. the pure-NumPy lockstep lanes.

    Three lanes over the widest static CAT sweep (the ``batch_sweeps``
    shape) plus one dynamic all-policies lockstep sweep: per-run scalar
    fast machines, ``simulate_batch`` with the native tier off, and
    ``simulate_batch`` with the native tier on.  JIT compilation is
    warmed off the clock (the tier's self-check plus one unmeasured
    round); bit-identity across all three lanes is asserted every
    measured round.  On hosts without numba the native lane is not
    measured and the payload says so.
    """
    from repro.experiments.batch import (
        _lockstep_mechanisms,
        _run_mechanism,
        build_batch_kernel,
        simulate_batch,
    )
    from repro.core.policies import POLICIES
    from repro.experiments.config import ScaleConfig
    from repro.experiments.runner import build_machine
    from repro.sim.tracestore import TraceStore
    from repro.workloads.mixes import make_mixes

    with _native_env("auto") as nk:
        enabled = nk.kernels_enabled()  # self-check doubles as JIT warm-up
        out: dict = {"tier": nk.tier_status()}
    if not enabled:
        out["note"] = "numba unavailable or tier disabled; native lanes not measured"
        print("native sweeps: tier disabled, skipping")
        return out

    sc = ScaleConfig(name="bench-batch", llc_scale=16, quantum=512)
    store = TraceStore(None, mode="memory")
    rounds = max(1, min(rounds, 3))
    sweeps: dict[str, dict] = {}
    for cat in NATIVE_CATEGORIES:
        mix = make_mixes(cat, 1, seed=2019)[0]
        specs = _batch_sweep_specs(mix, sc)
        with _native_env("auto"):
            simulate_batch(specs[:2], sc, trace_store=store)  # warm store + JIT
        best_native = best_pure = best_scalar = float("inf")
        identical = True
        for _ in range(rounds):
            t0 = time.perf_counter()
            scalar = [_batch_scalar_run(mix, s, sc, store) for s in specs]
            best_scalar = min(best_scalar, time.perf_counter() - t0)
            with _native_env("off"):
                t0 = time.perf_counter()
                pure = simulate_batch(specs, sc, trace_store=store)
                best_pure = min(best_pure, time.perf_counter() - t0)
            with _native_env("auto"):
                t0 = time.perf_counter()
                native = simulate_batch(specs, sc, trace_store=store)
                best_native = min(best_native, time.perf_counter() - t0)
            identical = identical and all(
                (nr.totals == pr.totals).all()
                and nr.wall_cycles == pr.wall_cycles
                and (nr.totals == s.deltas).all()
                and nr.wall_cycles == s.wall_cycles
                for nr, pr, s in zip(native, pure, scalar)
            )
        assert identical, f"native sweep {cat}: lanes diverged"
        sweeps[cat] = {
            "runs": len(specs),
            "accesses_per_core": BATCH_ACCESSES,
            "scalar_s": round(best_scalar, 3),
            "pure_batch_s": round(best_pure, 3),
            "native_batch_s": round(best_native, 3),
            "speedup_native_vs_pure": round(best_pure / best_native, 2),
            "speedup_native_vs_scalar": round(best_scalar / best_native, 2),
            "bit_identical": identical,
        }
        print(
            f"native {cat}: R={len(specs)} scalar={best_scalar:.2f}s "
            f"pure={best_pure:.2f}s native={best_native:.2f}s "
            f"x{best_pure / best_native:.2f} identical={identical}"
        )
    out["sweeps"] = sweeps
    out["geomean_speedup_native_vs_pure"] = (
        round(g, 2)
        if (g := _geomean([s["speedup_native_vs_pure"] for s in sweeps.values()]))
        else None
    )

    # Dynamic lane: every registered policy in masked lockstep, native
    # vs pure grouped kernels, scalar fast as the identity reference.
    dsc = ScaleConfig(
        name="bench-dynamic", llc_scale=16, n_cores=4, quantum=512,
        sample_units=512, exec_units=DYNAMIC_EXEC_UNITS, n_epochs=1,
    )
    mix = make_mixes("pref_agg", 1, n_cores=4, seed=2019)[0]
    mechs = list(POLICIES)
    build_batch_kernel(mix, dsc, store)  # warm the store off the clock
    with _native_env("auto"):
        _lockstep_mechanisms(build_batch_kernel(mix, dsc, store), mechs[:2], dsc)
    best_native = best_pure = float("inf")
    identical = True
    scalar = [
        _run_mechanism(
            build_machine(mix, dsc, trace_store=store, engine="fast"), m, dsc
        )
        for m in mechs
    ]
    for _ in range(rounds):
        with _native_env("off"):
            t0 = time.perf_counter()
            pure = _lockstep_mechanisms(build_batch_kernel(mix, dsc, store), mechs, dsc)
            best_pure = min(best_pure, time.perf_counter() - t0)
        with _native_env("auto"):
            t0 = time.perf_counter()
            native = _lockstep_mechanisms(build_batch_kernel(mix, dsc, store), mechs, dsc)
            best_native = min(best_native, time.perf_counter() - t0)
        identical = identical and all(
            (nr.totals == pr.totals).all()
            and nr.wall_cycles == pr.wall_cycles
            and (nr.totals == s.totals).all()
            and nr.wall_cycles == s.wall_cycles
            for nr, pr, s in zip(native, pure, scalar)
        )
    assert identical, "native dynamic sweep: lanes diverged"
    out["dynamic"] = {
        "mechanisms": len(mechs),
        "exec_units_per_epoch": DYNAMIC_EXEC_UNITS,
        "pure_batch_s": round(best_pure, 3),
        "native_batch_s": round(best_native, 3),
        "speedup_native_vs_pure": round(best_pure / best_native, 2),
        "bit_identical": identical,
    }
    print(
        f"native dynamic: R={len(mechs)} pure={best_pure:.2f}s "
        f"native={best_native:.2f}s x{best_pure / best_native:.2f} "
        f"identical={identical}"
    )
    return out


def emit_engine(args) -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.experiments.batch import build_batch_kernel
        from repro.sim.tracestore import TraceStore
        from repro.workloads.mixes import make_mixes

        from bench_simulator_speed import ENGINE_SC

        # Pre-warm one shared in-memory store for the plane-on lane so
        # it measures steady-state replay (materialization off-clock).
        warm = TraceStore(None, mode="memory")
        build_batch_kernel(make_mixes("pref_agg", 1, seed=2019)[0], ENGINE_SC, warm)

        best: dict[tuple[str, str], float] = {}
        lanes = ["off", "memory"]
        with tempfile.TemporaryDirectory(prefix="bench-engine-") as tmp:
            tmp_root = Path(tmp)
            for rnd in range(args.rounds):
                for lane in lanes:
                    times = _engine_sweep_times(
                        lane, tmp_root, f"{lane}-{rnd}",
                        store=warm if lane == "memory" else None,
                    )
                    for mech, secs in times.items():
                        key = (mech, lane)
                        best[key] = min(best.get(key, float("inf")), secs)
        batch_sweeps = _measure_batch_sweeps(args.rounds)
        dynamic_sweeps = _measure_dynamic_sweeps(args.rounds)
        native_sweeps = _measure_native_sweeps(args.rounds)
        mechanisms = {}
        for mech in ENGINE_MECHANISMS:
            off = best[(mech, "off")]
            on = best[(mech, "memory")]
            mechanisms[mech] = {
                "plane_off_s": round(off, 4),
                "plane_on_s": round(on, 4),
                "speedup": round(off / on, 3),
            }
            print(f"{mech}: off={off * 1e3:.1f}ms  on={on * 1e3:.1f}ms  "
                  f"x{off / on:.2f}")
        geo = _geomean([m["speedup"] for m in mechanisms.values()])
        payload = {
            "generated_utc": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
            "host": _host_info(),
            "method": (
                f"cold per-mechanism runs of one full-machine mix at the "
                f"bench-engine scale, best of {args.rounds} interleaved rounds, "
                f"max_workers=1 (serial); plane_off is the pre-trace-plane "
                f"execution path (live per-run trace generation); plane_on "
                f"shares one in-memory materialization across the sweep; "
                f"batch_sweeps compare repro.simulate_batch (multi-run batch "
                f"engine) against per-run scalar fast machines over a warm "
                f"shared trace store, {BATCH_ACCESSES} accesses/core; "
                f"batch_dynamic_sweeps run every registered policy over one "
                f"mix in masked lockstep vs per-run scalar fast "
                f"(controller-driven, divergent masks/CAT; "
                f"{DYNAMIC_EXEC_UNITS} exec units/epoch, best of <=3 rounds, "
                f"bit-identity asserted every round); native_sweeps compare "
                f"the compiled (numba) kernel tier against the pure-NumPy "
                f"lockstep lanes and scalar fast machines on the same sweeps "
                f"(JIT warmed off the clock, bit-identity asserted every "
                f"round, skipped when numba is unavailable)"
            ),
            "mechanisms": mechanisms,
            "geomean_speedup_plane_on_vs_off": round(geo, 3) if geo else None,
            "batch_sweeps": batch_sweeps,
            "geomean_speedup_batch_vs_scalar": (
                round(g, 2)
                if (g := _geomean([s["speedup"] for s in batch_sweeps.values()]))
                else None
            ),
            "batch_dynamic_sweeps": dynamic_sweeps,
            "geomean_speedup_dynamic_batch_vs_scalar": (
                round(g, 2)
                if (g := _geomean([s["speedup"] for s in dynamic_sweeps.values()]))
                else None
            ),
            "native_sweeps": native_sweeps,
        }
        out = args.out if args.out.name != "BENCH_simulator.json" else (
            REPO_ROOT / "BENCH_engine.json"
        )
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
        return 0
    finally:
        sys.path.pop(0)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--rounds", type=int, default=5)
    ap.add_argument("--accesses", type=int, default=8192, help="accesses per core")
    ap.add_argument("--out", type=Path, default=REPO_ROOT / "BENCH_simulator.json")
    ap.add_argument(
        "--baseline-src",
        type=Path,
        default=None,
        help="src/ dir of a pre-fast-kernel checkout to measure live",
    )
    ap.add_argument(
        "--baseline-note",
        default="pre-PR kernel (commit before the fast engine landed)",
    )
    ap.add_argument(
        "--engine",
        action="store_true",
        help="measure the experiment engine's cold sweep (trace plane on "
        "vs off) and write BENCH_engine.json instead",
    )
    args = ap.parse_args(argv)
    if args.engine:
        return emit_engine(args)

    src = str(REPO_ROOT / "src")
    prior = {}
    if args.out.exists():
        prior = json.loads(args.out.read_text())

    best: dict[tuple[str, str], float] = {}
    lanes = [("fast", src, "fast"), ("reference", src, "reference")]
    # Native scalar lane only where the compiled tier actually engages
    # (numba importable, self-check green); the probe also doubles as
    # the off-clock JIT warm-up for the first measured round.
    sys.path.insert(0, src)
    try:
        from repro.sim import nativekernels

        native_on = nativekernels.kernels_enabled()
    except Exception:
        native_on = False
    finally:
        sys.path.pop(0)
    if native_on:
        lanes.append(("native", src, "native"))
    if args.baseline_src is not None:
        lanes.append(("pre_pr", str(args.baseline_src), None))

    for name, benches in CORE_SCENARIOS.items():
        for _ in range(args.rounds):
            for lane, root, engine in lanes:
                rate = _throughput(root, engine, benches, args.accesses)
                key = (name, lane)
                best[key] = max(best.get(key, 0.0), rate)
            rate = _trace_gen_throughput(src, benches, args.accesses)
            best[(name, "trace_gen")] = max(best.get((name, "trace_gen"), 0.0), rate)
        print(f"{name}: " + "  ".join(
            f"{lane}={best[(name, lane)]:,.0f}/s" for lane, _, _ in lanes)
            + f"  trace_gen={best[(name, 'trace_gen')]:,.0f}/s")

    scenarios = {}
    for name, benches in CORE_SCENARIOS.items():
        fast = best[(name, "fast")]
        ref = best[(name, "reference")]
        trace_gen = best[(name, "trace_gen")]
        pre = best.get((name, "pre_pr"))
        if pre is None:
            pre = (
                prior.get("scenarios", {}).get(name, {}).get("pre_pr_acc_per_s")
            )
        native = best.get((name, "native"))
        # Generation and kernel times add: 1/fast = 1/kernel + 1/trace_gen.
        kernel_inv = 1.0 / fast - 1.0 / trace_gen
        scenarios[name] = {
            "benchmarks": benches,
            "fast_acc_per_s": round(fast),
            "reference_acc_per_s": round(ref),
            "native_acc_per_s": round(native) if native else None,
            "trace_gen_acc_per_s": round(trace_gen),
            "kernel_only_acc_per_s": round(1.0 / kernel_inv) if kernel_inv > 0 else None,
            "trace_share_of_fast": round(fast / trace_gen, 3),
            "pre_pr_acc_per_s": round(pre) if pre else None,
            "speedup_fast_vs_reference": round(fast / ref, 2),
            "speedup_native_vs_fast": round(native / fast, 2) if native else None,
            "speedup_fast_vs_pre_pr": round(fast / pre, 2) if pre else None,
        }

    payload = {
        "generated_utc": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "host": _host_info(),
        "method": (
            f"best of {args.rounds} interleaved rounds, "
            f"{args.accesses} accesses/core, scaled_params(16), quantum=512; "
            f"the native lane (compiled kernel tier) is measured only when "
            f"numba imports, JIT warmed off the clock"
        ),
        "baseline": {
            "note": args.baseline_note,
            "measured": "live" if args.baseline_src else
            prior.get("baseline", {}).get("measured", "carried-forward"),
        },
        "scenarios": scenarios,
        "geomean_speedup_fast_vs_reference": round(
            _geomean([s["speedup_fast_vs_reference"] for s in scenarios.values()]), 2
        ),
        "geomean_speedup_native_vs_fast": (
            round(g, 2)
            if (g := _geomean(
                [s["speedup_native_vs_fast"] or 0 for s in scenarios.values()]
            ))
            else None
        ),
        "geomean_speedup_fast_vs_pre_pr": (
            round(g, 2)
            if (g := _geomean(
                [s["speedup_fast_vs_pre_pr"] or 0 for s in scenarios.values()]
            ))
            else None
        ),
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
