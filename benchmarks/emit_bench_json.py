"""Regenerate ``BENCH_simulator.json`` — simulator core-throughput record.

Measures the core-throughput scenarios from
``bench_simulator_speed.py`` (accesses simulated per second) for the
``fast`` and ``reference`` engines and writes the results, per-scenario
speedups and their geometric mean to ``BENCH_simulator.json`` at the
repository root.

Methodology: scenarios are measured best-of-``--rounds`` with the
engines *interleaved* round by round, so transient machine load hits
every engine alike instead of biasing whichever ran last.  Numbers are
this-host absolute throughputs — compare ratios, not raw values,
across machines.

Refresh::

    PYTHONPATH=src python benchmarks/emit_bench_json.py

To also (re)measure the pre-fast-kernel baseline live, point
``--baseline-src`` at a checkout of the commit preceding the fast
kernel (e.g. ``git worktree add /tmp/prepr <commit>`` then
``--baseline-src /tmp/prepr/src``).  Without it, any baseline figures
in an existing ``BENCH_simulator.json`` are carried forward with their
original provenance note.
"""

from __future__ import annotations

import argparse
import importlib
import json
import math
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_simulator_speed import CORE_SCENARIOS  # noqa: E402


def _load_stack(src_root: str):
    """(Re)import the simulator from ``src_root``, dropping cached modules."""
    for mod in [m for m in sys.modules if m.split(".")[0] == "repro"]:
        del sys.modules[mod]
    sys.path.insert(0, src_root)
    try:
        machine_mod = importlib.import_module("repro.sim.machine")
        params_mod = importlib.import_module("repro.sim.params")
        spec_mod = importlib.import_module("repro.workloads.speclike")
    finally:
        sys.path.pop(0)
    return machine_mod.Machine, params_mod.scaled_params, spec_mod.build_trace


def _throughput(src_root: str, engine: str | None, benches: list[str], n: int) -> float:
    Machine, scaled_params, build_trace = _load_stack(src_root)
    params = scaled_params(16)
    kwargs = {} if engine is None else {"engine": engine}
    m = Machine(params, quantum=512, **kwargs)
    for core, bench in enumerate(benches):
        m.attach_trace(
            core,
            build_trace(
                bench,
                llc_lines=params.llc.lines,
                base_line=m.core_base_line(core),
                seed=core,
            ),
        )
    t0 = time.perf_counter()
    m.run_accesses(n)
    return n * len(benches) / (time.perf_counter() - t0)


def _geomean(vals: list[float]) -> float | None:
    vals = [v for v in vals if v]
    if not vals:
        return None
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--rounds", type=int, default=5)
    ap.add_argument("--accesses", type=int, default=8192, help="accesses per core")
    ap.add_argument("--out", type=Path, default=REPO_ROOT / "BENCH_simulator.json")
    ap.add_argument(
        "--baseline-src",
        type=Path,
        default=None,
        help="src/ dir of a pre-fast-kernel checkout to measure live",
    )
    ap.add_argument(
        "--baseline-note",
        default="pre-PR kernel (commit before the fast engine landed)",
    )
    args = ap.parse_args(argv)

    src = str(REPO_ROOT / "src")
    prior = {}
    if args.out.exists():
        prior = json.loads(args.out.read_text())

    best: dict[tuple[str, str], float] = {}
    lanes = [("fast", src, "fast"), ("reference", src, "reference")]
    if args.baseline_src is not None:
        lanes.append(("pre_pr", str(args.baseline_src), None))

    for name, benches in CORE_SCENARIOS.items():
        for _ in range(args.rounds):
            for lane, root, engine in lanes:
                rate = _throughput(root, engine, benches, args.accesses)
                key = (name, lane)
                best[key] = max(best.get(key, 0.0), rate)
        print(f"{name}: " + "  ".join(
            f"{lane}={best[(name, lane)]:,.0f}/s" for lane, _, _ in lanes))

    scenarios = {}
    for name, benches in CORE_SCENARIOS.items():
        fast = best[(name, "fast")]
        ref = best[(name, "reference")]
        pre = best.get((name, "pre_pr"))
        if pre is None:
            pre = (
                prior.get("scenarios", {}).get(name, {}).get("pre_pr_acc_per_s")
            )
        scenarios[name] = {
            "benchmarks": benches,
            "fast_acc_per_s": round(fast),
            "reference_acc_per_s": round(ref),
            "pre_pr_acc_per_s": round(pre) if pre else None,
            "speedup_fast_vs_reference": round(fast / ref, 2),
            "speedup_fast_vs_pre_pr": round(fast / pre, 2) if pre else None,
        }

    payload = {
        "generated_utc": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "method": (
            f"best of {args.rounds} interleaved rounds, "
            f"{args.accesses} accesses/core, scaled_params(16), quantum=512"
        ),
        "baseline": {
            "note": args.baseline_note,
            "measured": "live" if args.baseline_src else
            prior.get("baseline", {}).get("measured", "carried-forward"),
        },
        "scenarios": scenarios,
        "geomean_speedup_fast_vs_reference": round(
            _geomean([s["speedup_fast_vs_reference"] for s in scenarios.values()]), 2
        ),
        "geomean_speedup_fast_vs_pre_pr": (
            round(g, 2)
            if (g := _geomean(
                [s["speedup_fast_vs_pre_pr"] or 0 for s in scenarios.values()]
            ))
            else None
        ),
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
