"""Fig. 7: PT's normalized HS and WS vs. baseline per workload."""

from conftest import print_category_means

from repro.experiments.figures import fig07_pt


def test_fig07_pt(run_once, scale, store):
    d = run_once(fig07_pt, scale, store)
    print_category_means(d)
    means = d["category_means"]
    # paper shape: Pref Unfri benefits the most, Pref Agg second;
    # Pref No Agg sees ~no change; Pref Fri improves least.
    assert means["pref_unfri"]["pt"] > means["pref_agg"]["pt"]
    assert means["pref_unfri"]["pt"] > 1.05
    assert means["pref_agg"]["pt"] > 1.0
    assert 0.9 < means["pref_no_agg"]["pt"] < 1.1
    assert means["pref_fri"]["pt"] < means["pref_agg"]["pt"]
    # WS agrees directionally
    assert d["category_means_ws"]["pref_unfri"]["pt"] > 1.0
