"""Fig. 14: normalized memory traffic of the seven mechanisms."""

from conftest import print_category_means

from repro.experiments.figures import fig14_bandwidth


def test_fig14_bandwidth(run_once, scale, store):
    d = run_once(fig14_bandwidth, scale, store)
    print_category_means(d)
    means = d["category_means"]
    for cat in ("pref_agg", "pref_unfri"):
        # paper shape: PT has the lowest bandwidth consumption (it
        # disables prefetching outright)...
        assert means[cat]["pt"] < 0.95, cat
        # ...while pure CP does not reduce prefetch traffic.
        assert means[cat]["pref-cp"] > 0.95, cat
        assert means[cat]["dunn"] > 0.95, cat
        # CMM throttles the useless prefetchers, landing at or below CP.
        assert means[cat]["cmm-a"] < means[cat]["pref-cp"], cat
