"""Related-work baseline: PPM 2-group throttling vs. the paper's PT.

Tests the paper's Sec. III-A critique of Panda et al.'s detection
metric: "Using this [L2 PPM] metric on the Intel L2 cache side cannot
accurately identify the Pref Agg cores."  On the Pref Unfri category —
where the gains come from throttling Rand Access-like cores whose PPM
is ~1 — PPM-group must trail the Fig. 5-based PT.
"""

import numpy as np

from repro.experiments.engine import default_session, run
from repro.metrics.speedup import harmonic_speedup
from repro.workloads.mixes import make_mixes


def _sweep(scale):
    means = {}
    for mech in ("pt", "ppm-group"):
        vals = []
        for mix in make_mixes("pref_unfri", scale.workloads_per_category, seed=scale.seed):
            alone = default_session().alone_ipcs(mix, scale)
            base = run(mix, "baseline", scale)
            res = run(mix, mech, scale)
            vals.append(harmonic_speedup(res.ipc, alone) / harmonic_speedup(base.ipc, alone))
        means[mech] = float(np.mean(vals))
    return means


def test_ppm_baseline_trails_pt(run_once, scale):
    means = run_once(_sweep, scale)
    print()
    print(f"  PT (Fig. 5 detection)     : normalized HS {means['pt']:.3f}")
    print(f"  PPM 2-group (SPAC-style)  : normalized HS {means['ppm-group']:.3f}")
    # PT's detector finds the unfriendly aggressors; the PPM split does not.
    assert means["pt"] > means["ppm-group"] + 0.01
    assert means["pt"] > 1.05
