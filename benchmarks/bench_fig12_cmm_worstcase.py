"""Fig. 12: CMM worst-case per-application speedup."""

from conftest import print_category_means

from repro.experiments.figures import fig12_cmm_worstcase


def test_fig12_cmm_worstcase(run_once, scale, store):
    d = run_once(fig12_cmm_worstcase, scale, store)
    print_category_means(d)
    # paper shape: all workloads keep an 80%+ worst-case speedup under
    # CMM, most 90%+ — no individual application is hurt significantly.
    rows = d["rows"]
    for mech in ("cmm-a", "cmm-b", "cmm-c"):
        vals = [r[mech] for r in rows]
        assert min(vals) >= 0.75, mech  # floor (paper: 80%+)
        frac_90 = sum(v >= 0.88 for v in vals) / len(vals)
        assert frac_90 >= 0.5, mech     # "most of them get 90%+"
