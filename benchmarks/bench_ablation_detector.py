"""Ablation: front-end detector configuration (paper Sec. III-A).

Two questions the paper discusses:

* the PMR locality filter ("say 70%") — without it, cores whose
  prefetches mostly hit L2 (high prefetch locality) would be throttled
  for no reason;
* the LLC-PT (M-7) alternative — the paper reports it identifies
  basically the same Agg set; on our substrate it is the filter that
  excludes LLC-resident pointer chases.
"""

from dataclasses import replace

from repro.core.frontend import AggDetector, DetectorConfig
from repro.core.metrics_defs import summarize_sample
from repro.experiments.runner import build_machine
from repro.platform.simulated import SimulatedPlatform
from repro.workloads.mixes import make_mixes
from repro.workloads.speclike import benchmark


def _detect_all(scale, cfg: DetectorConfig):
    """Run the detector over every mix; return (true_pos, false_pos, misses)."""
    detector = AggDetector(cfg)
    tp = fp = miss = 0
    for cat in ("pref_fri", "pref_agg", "pref_unfri", "pref_no_agg"):
        for mix in make_mixes(cat, scale.workloads_per_category, seed=scale.seed):
            m = build_machine(mix, scale)
            plat = SimulatedPlatform(m)
            plat.run_interval(max(scale.sample_units, 2048))
            sample = plat.run_interval(scale.sample_units)
            report = detector.detect(summarize_sample(sample, plat.cycles_per_second))
            detected = set(report.agg_set)
            truth = {
                c for c, b in enumerate(mix.benchmarks) if benchmark(b).pref_aggressive
            }
            tp += len(detected & truth)
            fp += len(detected - truth)
            miss += len(truth - detected)
    return tp, fp, miss


def _sweep(scale):
    base = DetectorConfig()
    return {
        "paper (with LLC-PT filter)": _detect_all(scale, base),
        "no LLC-PT filter": _detect_all(scale, replace(base, llc_pt_min=0.0)),
        "no PMR filter": _detect_all(scale, replace(base, pmr_threshold=0.0)),
    }


def test_detector_ablation(run_once, scale):
    results = run_once(_sweep, scale)
    print()
    for name, (tp, fp, miss) in results.items():
        print(f"  {name:28s} true+={tp:3d}  false+={fp:3d}  missed={miss:3d}")
    tp0, fp0, miss0 = results["paper (with LLC-PT filter)"]
    tp1, fp1, _ = results["no LLC-PT filter"]
    # the default pipeline detects aggressors with high precision and
    # full coverage ...
    assert tp0 / max(tp0 + fp0, 1) >= 0.8
    assert miss0 == 0
    # ... and, matching the paper's observation ("the identified Agg set
    # basically stays the same as when using LLC PT"), the M-7 filter is
    # (near-)redundant with the PTR pressure floor: it may only ever
    # remove false positives, never add them.
    assert fp0 <= fp1
    assert tp0 >= 0.9 * tp1
