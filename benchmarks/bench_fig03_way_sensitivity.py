"""Fig. 3: IPC as a function of allotted LLC ways (prefetchers on)."""

from repro.experiments.figures import fig03_way_sensitivity
from repro.experiments.report import render_table
from repro.workloads.speclike import benchmark


def test_fig03_way_sensitivity(run_once, scale):
    d = run_once(fig03_way_sensitivity, scale)
    rows = d["rows"]
    print()
    print(
        render_table(
            ["benchmark", "min ways (90%)", "min ways (80%)"],
            [[r["benchmark"], r["min_ways_90pct"], r["min_ways_80pct"]] for r in rows],
            title="Fig. 3 — LLC way sensitivity",
        )
    )
    by_name = {r["benchmark"]: r for r in rows}
    # paper's key observation: prefetch-aggressive-and-friendly apps need
    # no more than 2 ways for 90% of their best performance
    for name in ("410.bwaves", "462.libquantum", "470.lbm"):
        assert by_name[name]["min_ways_90pct"] <= 2
    # LLC-sensitive apps need at least 8 ways for 80%
    for r in rows:
        spec = benchmark(r["benchmark"])
        assert (r["min_ways_80pct"] >= 8) == spec.llc_sensitive, r["benchmark"]
    # way curves are (weakly) improving with more ways for sensitive apps
    curve = by_name["429.mcf"]["ipc_by_ways"]
    ways_sorted = sorted(curve)
    assert curve[ways_sorted[-1]] >= curve[ways_sorted[0]]
