"""Fig. 9: cache partitioning — Dunn vs. Pref-CP vs. Pref-CP2."""

from conftest import print_category_means

from repro.experiments.figures import fig09_cp


def test_fig09_cp(run_once, scale, store):
    d = run_once(fig09_cp, scale, store)
    print_category_means(d)
    means = d["category_means"]
    # paper shape: the prefetch-aware plans beat Dunn on every category
    # that actually contains aggressive prefetching.
    for cat in ("pref_fri", "pref_agg", "pref_unfri"):
        best_pref_cp = max(means[cat]["pref-cp"], means[cat]["pref-cp2"])
        assert best_pref_cp >= means[cat]["dunn"] - 0.01, cat
    # and deliver real gains where aggressors exist
    assert means["pref_unfri"]["pref-cp"] > 1.01
    assert means["pref_agg"]["pref-cp"] > 1.0
