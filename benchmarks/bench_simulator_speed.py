"""Micro-benchmarks of the simulator's hot paths.

Unlike the figure benches these measure raw substrate throughput
(accesses simulated per second) so performance regressions in the
cache/prefetcher/LLC loops show up in benchmark history.

The core-throughput benches are parametrised over the simulation
engine, so one run shows the ``fast`` kernel's margin over the
``reference`` kernel side by side.  ``benchmarks/emit_bench_json.py``
runs the same scenarios standalone and records the resulting
accesses/second in ``BENCH_simulator.json``.

The ``test_engine_*`` benches cover the experiment engine: a cold
evaluation (every run simulated) vs. a warm replay of the identical
evaluation from the on-disk result cache — the wall-clock win that
makes figure regeneration cheap.

The ``test_trace_*`` benches split a simulated run's cost into its two
components — trace *generation* and the simulation *kernel* — and
measure the trace plane (:mod:`repro.sim.tracestore`): replaying a
materialized trace vs. regenerating it live, and a cold engine sweep
with the plane on vs. off.  ``benchmarks/emit_bench_json.py --engine``
records the sweep numbers in ``BENCH_engine.json``.
"""

import dataclasses

import numpy as np
import pytest

from repro.experiments.config import TINY
from repro.experiments.engine import ExperimentSession
from repro.sim.cache import Cache, PartitionedCache
from repro.sim.fastcache import FastCache, FastPartitionedCache
from repro.sim.machine import CORE_ADDRESS_STRIDE_LINES, Machine
from repro.sim.params import CacheGeometry, scaled_params
from repro.sim.tracestore import TraceStore
from repro.workloads.mixes import make_mixes
from repro.workloads.speclike import build_trace

N_ACCESSES = 8192

# The three core-throughput scenarios (shared with emit_bench_json.py).
CORE_SCENARIOS = {
    "streaming": ["410.bwaves"],
    "random": ["rand_access"],
    "full_machine": [
        "410.bwaves", "462.libquantum", "429.mcf", "471.omnetpp",
        "rand_access", "483.xalancbmk", "453.povray", "416.gamess",
    ],
}

# Engine benches use a reduced scale so cold runs stay in seconds.
ENGINE_SC = dataclasses.replace(
    TINY, name="bench-engine", quantum=256, sample_units=256, exec_units=2048,
    alone_accesses=4096,
)
ENGINE_MECHS = ("pt", "cmm-a")


def _machine(benchmarks: list[str], engine: str = "auto") -> Machine:
    params = scaled_params(16)
    m = Machine(params, quantum=512, engine=engine)
    for core, bench in enumerate(benchmarks):
        m.attach_trace(core, build_trace(
            bench, llc_lines=params.llc.lines, base_line=m.core_base_line(core), seed=core))
    return m


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_streaming_core_throughput(benchmark, engine):
    m = _machine(CORE_SCENARIOS["streaming"], engine)
    benchmark.pedantic(m.run_accesses, args=(N_ACCESSES,), rounds=3, iterations=1)


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_random_core_throughput(benchmark, engine):
    m = _machine(CORE_SCENARIOS["random"], engine)
    benchmark.pedantic(m.run_accesses, args=(N_ACCESSES,), rounds=3, iterations=1)


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_full_machine_throughput(benchmark, engine):
    m = _machine(CORE_SCENARIOS["full_machine"], engine)
    benchmark.pedantic(m.run_accesses, args=(N_ACCESSES,), rounds=2, iterations=1)


def test_private_cache_access_rate(benchmark):
    c = Cache(CacheGeometry(32 * 1024, 8))
    lines = np.random.default_rng(0).integers(0, 4096, 20000).tolist()

    def run():
        access = c.access
        for line in lines:
            access(line)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_fast_private_cache_access_rate(benchmark):
    c = FastCache(CacheGeometry(32 * 1024, 8))
    lines = np.random.default_rng(0).integers(0, 4096, 20000).tolist()

    def run():
        access = c.access
        for line in lines:
            access(line)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_fast_private_cache_batch_rate(benchmark):
    """Same workload through the batch entry point (one call per array)."""
    c = FastCache(CacheGeometry(32 * 1024, 8))
    lines = np.random.default_rng(0).integers(0, 4096, 20000)

    benchmark.pedantic(lambda: c.access_many(lines), rounds=3, iterations=1)


def test_partitioned_cache_access_rate(benchmark):
    p = PartitionedCache(CacheGeometry(20 * 1024 * 1024 // 16, 20))
    allowed = tuple(range(20))
    lines = np.random.default_rng(0).integers(0, 60000, 20000).tolist()

    def run():
        access = p.access
        for line in lines:
            access(line, allowed)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_fast_partitioned_cache_access_rate(benchmark):
    p = FastPartitionedCache(CacheGeometry(20 * 1024 * 1024 // 16, 20))
    allowed = tuple(range(20))
    lines = np.random.default_rng(0).integers(0, 60000, 20000).tolist()

    def run():
        access = p.access
        for line in lines:
            access(line, allowed)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_fast_partitioned_cache_batch_rate(benchmark):
    p = FastPartitionedCache(CacheGeometry(20 * 1024 * 1024 // 16, 20))
    allowed = tuple(range(20))
    lines = np.random.default_rng(0).integers(0, 60000, 20000)

    benchmark.pedantic(lambda: p.access_many(lines, allowed), rounds=3, iterations=1)


QUANTUM = 512


@pytest.mark.parametrize("scenario", sorted(CORE_SCENARIOS))
def test_trace_generation_rate(benchmark, scenario):
    """Trace generation alone, chunked at the machine quantum.

    The complement of this and the core-throughput benches is the pure
    kernel time: ``run_accesses`` pays both, this pays only generation.
    """
    params = scaled_params(16)
    benches = CORE_SCENARIOS[scenario]

    def gen():
        for core, bench in enumerate(benches):
            t = build_trace(
                bench, llc_lines=params.llc.lines,
                base_line=core * CORE_ADDRESS_STRIDE_LINES, seed=core,
            )
            for _ in range(N_ACCESSES // QUANTUM):
                t.chunk(QUANTUM)

    benchmark.pedantic(gen, rounds=3, iterations=1)


def test_materialized_trace_replay_rate(benchmark):
    """Zero-copy replay of an already-materialized trace (the trace
    plane's steady state — compare with ``test_trace_generation_rate``)."""
    params = scaled_params(16)
    store = TraceStore(None, mode="memory")
    store.trace_for(
        "410.bwaves", llc_lines=params.llc.lines, base_line=0, seed=0, length=N_ACCESSES
    )

    def replay():
        t = store.trace_for(
            "410.bwaves", llc_lines=params.llc.lines, base_line=0, seed=0, length=N_ACCESSES
        )
        for _ in range(N_ACCESSES // QUANTUM):
            t.chunk(QUANTUM)

    benchmark.pedantic(replay, rounds=3, iterations=1)


def test_engine_cold_evaluation(benchmark, tmp_path):
    """Every run simulated: the price the cache and pool amortise."""
    mix = make_mixes("pref_agg", 1, seed=2019)[0]
    counter = iter(range(1000))

    def cold():
        session = ExperimentSession(cache_dir=tmp_path / f"cold{next(counter)}", max_workers=1)
        try:
            return session.evaluate(mix, ENGINE_MECHS, ENGINE_SC)
        finally:
            session.close()

    benchmark.pedantic(cold, rounds=2, iterations=1)


@pytest.mark.parametrize("plane", ["off", "memory"])
def test_engine_cold_sweep_trace_plane(benchmark, tmp_path, plane):
    """Cold sweep with the trace plane off (the pre-plane execution
    path: every run regenerates its traces) vs. on (materialize once,
    replay everywhere)."""
    mix = make_mixes("pref_agg", 1, seed=2019)[0]
    counter = iter(range(1000))

    def cold():
        session = ExperimentSession(
            cache_dir=tmp_path / f"{plane}{next(counter)}", max_workers=1, trace_cache=plane
        )
        try:
            return session.evaluate(mix, ("pt", "dunn", "cmm-a"), ENGINE_SC)
        finally:
            session.close()

    benchmark.pedantic(cold, rounds=2, iterations=1)


def test_engine_warm_replay(benchmark, tmp_path):
    """The identical evaluation replayed from the on-disk store."""
    mix = make_mixes("pref_agg", 1, seed=2019)[0]
    ExperimentSession(cache_dir=tmp_path / "warm", max_workers=1).evaluate(
        mix, ENGINE_MECHS, ENGINE_SC
    )

    def warm():
        session = ExperimentSession(cache_dir=tmp_path / "warm", max_workers=1)
        ev = session.evaluate(mix, ENGINE_MECHS, ENGINE_SC)
        assert all(r.cached for r in session.records)
        return ev

    benchmark.pedantic(warm, rounds=3, iterations=1)
