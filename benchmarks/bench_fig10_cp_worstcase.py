"""Fig. 10: CP worst-case per-application speedup."""

from conftest import print_category_means

from repro.experiments.figures import fig10_cp_worstcase


def test_fig10_cp_worstcase(run_once, scale, store):
    d = run_once(fig10_cp_worstcase, scale, store)
    print_category_means(d)
    means = d["category_means"]
    # paper shape: the prefetch-aware CP plans keep worst-case speedups
    # high (no application is destroyed by partitioning).
    for cat, m in means.items():
        assert m["pref-cp"] > 0.85, cat
        assert m["pref-cp2"] > 0.80, cat
