"""Fig. 13: all seven throttling/partitioning mechanisms compared."""

from conftest import print_category_means

from repro.experiments.figures import ALL_MECHS, fig13_all


def test_fig13_all_mechanisms(run_once, scale, store):
    d = run_once(fig13_all, scale, store)
    print_category_means(d)
    means = d["category_means"]
    # paper shape: Pref Agg and Pref Unfri benefit the most overall...
    best_gain = {
        cat: max(means[cat][m] for m in ALL_MECHS) for cat in means
    }
    assert best_gain["pref_unfri"] >= best_gain["pref_no_agg"]
    assert best_gain["pref_agg"] >= best_gain["pref_no_agg"]
    # ...and a coordinated mechanism is the overall winner on them.
    for cat in ("pref_agg", "pref_unfri"):
        winner = max(ALL_MECHS, key=lambda m: means[cat][m])
        assert winner.startswith("cmm"), f"{cat}: {winner}"
