"""Fig. 1: memory bandwidth per benchmark, demand vs. prefetch increase."""

from repro.experiments.figures import fig01_bandwidth
from repro.experiments.report import render_table
from repro.workloads.speclike import benchmark


def test_fig01_bandwidth(run_once, scale):
    d = run_once(fig01_bandwidth, scale)
    rows = d["rows"]
    print()
    print(
        render_table(
            ["benchmark", "demand MB/s", "total MB/s", "increase %"],
            [[r["benchmark"], r["demand_bw_mbs"], r["total_bw_mbs"], r["increase_pct"]] for r in rows],
            title="Fig. 1 — bandwidth with/without prefetching",
        )
    )
    by_name = {r["benchmark"]: r for r in rows}
    # paper shape: the demand-intensive streamers sit at multi-GB/s demand
    # bandwidth and gain far more than 50% from prefetching...
    for name in ("410.bwaves", "459.GemsFDTD", "437.leslie3d"):
        assert by_name[name]["demand_bw_mbs"] > 1500.0
        assert by_name[name]["increase_pct"] > 50.0
    # ...while compute-bound benchmarks barely move the memory bus.
    for name in ("453.povray", "416.gamess"):
        assert by_name[name]["demand_bw_mbs"] < 1500.0
    # classification consistency with the registry
    for r in rows:
        spec = benchmark(r["benchmark"])
        measured_aggressive = r["demand_bw_mbs"] > 1500.0 and r["increase_pct"] > 50.0
        assert measured_aggressive == spec.pref_aggressive, r["benchmark"]
