"""Fig. 8: PT's lowest per-application normalized IPC per workload."""

from conftest import print_category_means

from repro.experiments.figures import fig08_pt_worstcase


def test_fig08_pt_worstcase(run_once, scale, store):
    d = run_once(fig08_pt_worstcase, scale, store)
    print_category_means(d)
    rows = d["rows"]
    # paper shape: PT significantly hurts at least one application in
    # most workloads that contain prefetch-friendly benchmarks.
    fri_rows = [r for r in rows if r["category"] in ("pref_fri", "pref_agg")]
    hurt = [r for r in fri_rows if r["pt"] < 0.95]
    assert len(hurt) >= len(fri_rows) // 2
    # and the damage can be severe (paper: >50% loss for some)
    assert min(r["pt"] for r in fri_rows) < 0.90
