"""Fig. 2: IPC speedup from prefetching per benchmark."""

from repro.experiments.figures import fig02_prefetch_speedup
from repro.experiments.report import render_table


def test_fig02_prefetch_speedup(run_once, scale):
    d = run_once(fig02_prefetch_speedup, scale)
    rows = d["rows"]
    print()
    print(
        render_table(
            ["benchmark", "IPC on", "IPC off", "speedup %"],
            [[r["benchmark"], r["ipc_on"], r["ipc_off"], r["speedup_pct"]] for r in rows],
            title="Fig. 2 — IPC speedup from prefetching",
        )
    )
    by_name = {r["benchmark"]: r["speedup_pct"] for r in rows}
    # paper shape: libquantum/bwaves/GemsFDTD/wrf gain 50+%
    for name in ("462.libquantum", "410.bwaves", "459.GemsFDTD", "481.wrf"):
        assert by_name[name] > 50.0
    # Rand Access is hurt by prefetching (paper: ~-25% alone)
    assert by_name["rand_access"] < -10.0
    # omnetpp only slightly reduced
    assert -25.0 < by_name["471.omnetpp"] < 10.0
