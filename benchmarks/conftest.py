"""Shared fixtures for the figure-regeneration benchmarks.

Each ``bench_figNN_*.py`` regenerates one paper table/figure and
asserts its qualitative *shape* (who wins, roughly by how much).
Absolute numbers are simulator units — see EXPERIMENTS.md.

Scale comes from ``REPRO_SCALE`` (default ``tiny``); runs within one
pytest session share an :class:`EvalStore`, so the first benchmark
touching a mechanism pays for its runs and later figures that reuse
the same runs are cheap.  Every benchmark is single-round
(``benchmark.pedantic(rounds=1)``): these are regeneration harnesses,
not micro-benchmarks.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import get_scale
from repro.experiments.figures import get_store


@pytest.fixture(scope="session")
def scale():
    return get_scale()


@pytest.fixture(scope="session")
def store(scale):
    return get_store(scale)


@pytest.fixture
def run_once(benchmark):
    """Run a figure driver exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


def print_category_means(d: dict) -> None:
    """Dump a mechanism figure's category means (the paper's grey bars)."""
    from repro.experiments.report import render_series

    print()
    for cat, means in d["category_means"].items():
        labels = list(means)
        print(render_series(f"{d['figure']}[{d['metric']}] {cat}", labels, [means[m] for m in labels]))
