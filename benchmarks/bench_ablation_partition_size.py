"""Ablation: the 1.5x partition-sizing rule (paper Sec. III-B3).

"It was experimentally determined that a partition size of 1.5 times
the size of the Agg set works well."  We sweep the factor for Pref-CP
on the aggressive categories.  The shape that must hold: gains decay
monotonically as the partition grows (a too-large partition stops
protecting the victims), and 1.5 captures most of the achievable gain.
On our substrate even smaller partitions do marginally better than
1.5x because the synthetic streamers are *fully* LLC-insensitive by
construction (Fig. 3: one way suffices); on real hardware friendly
apps still derive some benefit from residual LLC space, which is what
the paper's 1.5x compromise protects.
"""

import numpy as np

from repro.core.partitioning import PrefCPPolicy
from repro.experiments.engine import default_session, run
from repro.metrics.speedup import harmonic_speedup
from repro.workloads.mixes import make_mixes

FACTORS = (0.5, 1.0, 1.5, 2.5, 4.0)


def _sweep(scale):
    mixes = make_mixes("pref_agg", scale.workloads_per_category, seed=scale.seed) + make_mixes(
        "pref_unfri", scale.workloads_per_category, seed=scale.seed
    )
    means = {}
    for factor in FACTORS:
        vals = []
        for mix in mixes:
            alone = default_session().alone_ipcs(mix, scale)
            base = run(mix, "baseline", scale)
            res = run(
                mix, PrefCPPolicy(partition_factor=factor), scale, label=f"pref-cp@{factor}"
            )
            vals.append(
                harmonic_speedup(res.ipc, alone) / harmonic_speedup(base.ipc, alone)
            )
        means[factor] = float(np.mean(vals))
    return means


def test_partition_factor_ablation(run_once, scale):
    means = run_once(_sweep, scale)
    print()
    for f in FACTORS:
        print(f"  factor {f:>4}: normalized HS {means[f]:.3f}")
    # partitioning helps at the paper's operating point ...
    assert means[1.5] > 1.0
    # ... and the benefit decays monotonically as the partition grows
    assert means[1.5] >= means[2.5] >= means[4.0] - 0.005
    # 1.5x captures the bulk of the achievable gain
    best = max(means.values())
    assert means[1.5] - 1.0 >= 0.5 * (best - 1.0)
