"""Fig. 5: the front-end's Agg-set detection across workload categories."""

from repro.experiments.figures import fig05_detection
from repro.experiments.report import render_table
from repro.workloads.speclike import benchmark


def test_fig05_detection(run_once, scale):
    d = run_once(fig05_detection, scale)
    rows = d["rows"]
    print()
    print(
        render_table(
            ["workload", "agg set", "agg benchmarks"],
            [[r["workload"], str(r["agg_set"]), ", ".join(r["agg_benchmarks"])] for r in rows],
            title="Fig. 5 — detected prefetch-aggressive cores",
        )
    )
    by_cat: dict[str, list] = {}
    for r in rows:
        by_cat.setdefault(r["category"], []).append(r)
    # Pref No Agg workloads: the Agg set stays (near) empty.
    for r in by_cat["pref_no_agg"]:
        assert len(r["agg_set"]) <= 1
    # Pref Fri / Unfri workloads: most detections are genuinely aggressive.
    hits = total = 0
    for cat in ("pref_fri", "pref_unfri", "pref_agg"):
        for r in by_cat[cat]:
            assert r["agg_set"], f"{r['workload']}: nothing detected"
            for b in r["agg_benchmarks"]:
                total += 1
                hits += benchmark(b).pref_aggressive
    assert hits / total >= 0.8
