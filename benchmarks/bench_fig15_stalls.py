"""Fig. 15: normalized STALLS_L2_PENDING per workload."""

from conftest import print_category_means

from repro.experiments.figures import fig15_stalls


def test_fig15_stalls(run_once, scale, store):
    d = run_once(fig15_stalls, scale, store)
    print_category_means(d)
    means = d["category_means"]
    # paper shape: CMM-a/c show the lowest stall counts on the
    # categories with aggressive prefetching (best isolation).
    for cat in ("pref_agg", "pref_unfri"):
        cmm_best = min(means[cat]["cmm-a"], means[cat]["cmm-c"])
        assert cmm_best < 1.0, cat
        assert cmm_best <= means[cat]["dunn"], cat
        assert cmm_best <= means[cat]["pref-cp"] + 0.01, cat
