"""Table I: per-core metric values on a mixed workload."""

from repro.experiments.figures import table1_metrics
from repro.experiments.report import render_table
from repro.workloads.speclike import benchmark


def test_table1_metrics(run_once, scale):
    d = run_once(table1_metrics, scale)
    rows = d["rows"]
    assert len(rows) == 8
    print()
    print(
        render_table(
            ["core", "benchmark", "M2", "M3 (req/s)", "M4 PGA", "M5 PMR", "M6 PPM", "M7 (B/s)"],
            [
                [
                    r["core"], r["benchmark"], r["M2_l2_pref_miss_frac"], r["M3_l2_ptr"],
                    r["M4_pga"], r["M5_l2_pmr"], r["M6_l2_ppm"], r["M7_llc_pt"],
                ]
                for r in rows
            ],
            title="Table I metrics (one pref_agg workload)",
        )
    )
    # shape: prefetch-aggressive benchmarks show higher PGA than quiet ones
    by_agg = {r["benchmark"]: r["M4_pga"] for r in rows}
    agg_vals = [v for b, v in by_agg.items() if benchmark(b).pref_aggressive]
    quiet_vals = [v for b, v in by_agg.items() if not benchmark(b).pref_aggressive]
    if agg_vals and quiet_vals:
        assert max(agg_vals) > min(quiet_vals)
