"""Ablation: coarse vs. fine-grained prefetch throttling.

The paper treats a core's four prefetchers as one on/off entity but
notes Intel exposes them individually.  The ``fine_grained`` PT option
additionally probes L2-only-off and L1-only-off for the winning
off-set; it must never be worse than coarse PT (it only adds
candidates under the same selection rule).
"""

import numpy as np

from repro.core.throttling import PrefetchThrottlingPolicy
from repro.experiments.engine import default_session, run
from repro.metrics.speedup import harmonic_speedup
from repro.workloads.mixes import make_mixes


def _sweep(scale):
    mixes = make_mixes("pref_unfri", scale.workloads_per_category, seed=scale.seed) + make_mixes(
        "pref_agg", scale.workloads_per_category, seed=scale.seed
    )
    means = {}
    for fine in (False, True):
        vals = []
        for mix in mixes:
            alone = default_session().alone_ipcs(mix, scale)
            base = run(mix, "baseline", scale)
            res = run(
                mix, PrefetchThrottlingPolicy(fine_grained=fine), scale,
                label="pt-fine" if fine else "pt",
            )
            vals.append(harmonic_speedup(res.ipc, alone) / harmonic_speedup(base.ipc, alone))
        means["fine" if fine else "coarse"] = float(np.mean(vals))
    return means


def test_fine_grained_ablation(run_once, scale):
    means = run_once(_sweep, scale)
    print()
    print(f"  coarse PT : normalized HS {means['coarse']:.3f}")
    print(f"  fine PT   : normalized HS {means['fine']:.3f}")
    assert means["coarse"] > 1.0
    # extra candidates under the same margin rule can only help or tie
    # (tolerance covers sampling-position noise)
    assert means["fine"] >= means["coarse"] - 0.02
